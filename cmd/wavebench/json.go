package main

// Machine-readable metrics (-json) and the load-scaling figure: the
// measurements that seed BENCH_*.json perf-trajectory tracking and the
// EXPERIMENTS.md sharded-vs-colored assembly comparison.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"wavepipe"
	"wavepipe/internal/circuit"
	"wavepipe/internal/circuits"
	"wavepipe/internal/device"
	wpcore "wavepipe/internal/wavepipe"
)

// benchMetrics is one benchmark's machine-readable record.
type benchMetrics struct {
	Circuit                string  `json:"circuit"`
	Scheme                 string  `json:"scheme"`
	GOMAXPROCS             int     `json:"gomaxprocs"`
	NsPerOp                int64   `json:"ns_per_op"`
	AllocsPerOp            uint64  `json:"allocs_per_op"`
	Points                 int     `json:"points"`
	Stages                 int     `json:"stages"`
	NRIters                int     `json:"nr_iters"`
	BypassTol              float64 `json:"bypass_tol"`
	BypassedFactorizations int     `json:"bypassed_factorizations"`
	Refactorizations       int     `json:"refactorizations"`
	FullFactorizations     int     `json:"full_factorizations"`
	// Incremental-assembly metadata (zero values when -devbypass is unset).
	DeviceBypass    bool  `json:"device_bypass"`
	BypassedEvals   int64 `json:"bypassed_evals"`
	LinearStampHits int64 `json:"linear_stamp_hits"`
	LoadSerialNs    int64 `json:"load_serial_ns"`
	LoadSharded4Ns  int64 `json:"load_sharded4_ns"`
	LoadColored4Ns  int64 `json:"load_colored4_ns"`
	// LoadReductionNs is what one device-load call saves under the colored
	// direct-stamp path relative to shard-and-reduce at 4 workers.
	LoadReductionNs int64 `json:"load_reduction_ns"`
	// Two-level scheduling metadata (zero values when -cores is unset).
	CoreBudget         int  `json:"core_budget"`
	PipelineWorkers    int  `json:"pipeline_workers"`
	IntraWorkers       int  `json:"intra_workers"`
	PipelineSerialized bool `json:"pipeline_serialized"`
}

// measureLoadNs returns the fastest observed wall time of one full device
// load under the given assembly configuration (workers <= 1 is the plain
// serial path).
func measureLoadNs(sys *circuit.System, mode circuit.LoadMode, workers int) int64 {
	ws := sys.NewWorkspace()
	if workers > 1 {
		ws.SetLoadWorkers(workers)
		ws.SetLoadMode(mode)
	}
	x := make([]float64, sys.N)
	p := circuit.LoadParams{Alpha0: 1e9, Gmin: 1e-12, SrcScale: 1}
	ws.Load(x, p) // warm up (coloring probe, pools)
	const iters = 20
	best := int64(0)
	for r := 0; r < 5; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			ws.Load(x, p)
		}
		d := time.Since(start).Nanoseconds() / iters
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// jsonMetrics runs the selected circuit once per configuration and emits a
// JSON array of benchMetrics on stdout.
func jsonMetrics(benchName string, bypassTol float64, coreBudget int, devBypass bool) error {
	var records []benchMetrics
	for _, b := range circuits.Suite() {
		if benchName != "all" && b.Name != benchName {
			continue
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		loadSerial := measureLoadNs(sys, circuit.LoadAuto, 1)
		loadSharded := measureLoadNs(sys, circuit.LoadSharded, 4)
		loadColored := measureLoadNs(sys, circuit.LoadColored, 4)
		opts := wavepipe.TranOptions{
			TStop:        window(b),
			Record:       []string{b.Probe},
			BypassTol:    bypassTol,
			CoreBudget:   coreBudget,
			DeviceBypass: devBypass,
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := wavepipe.RunTransient(sys, opts)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		records = append(records, benchMetrics{
			Circuit:                b.Name,
			Scheme:                 "serial",
			GOMAXPROCS:             runtime.GOMAXPROCS(0),
			NsPerOp:                wall.Nanoseconds(),
			AllocsPerOp:            ms1.Mallocs - ms0.Mallocs,
			Points:                 res.Stats.Points,
			Stages:                 res.Stats.Stages,
			NRIters:                res.Stats.NRIters,
			BypassTol:              bypassTol,
			BypassedFactorizations: res.Stats.BypassedFactorizations,
			Refactorizations:       res.Stats.Refactorizations,
			FullFactorizations:     res.Stats.FullFactorizations,
			DeviceBypass:           devBypass,
			BypassedEvals:          res.Stats.BypassedEvals,
			LinearStampHits:        res.Stats.LinearStampHits,
			LoadSerialNs:           loadSerial,
			LoadSharded4Ns:         loadSharded,
			LoadColored4Ns:         loadColored,
			LoadReductionNs:        loadSharded - loadColored,
			CoreBudget:             res.Stats.CoreBudget,
			PipelineWorkers:        res.Stats.PipelineWorkers,
			IntraWorkers:           res.Stats.IntraWorkers,
			PipelineSerialized:     res.Stats.PipelineSerialized,
		})
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark circuit %q", benchName)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// coreScaleRecord is one point of the core-budget scaling sweep.
type coreScaleRecord struct {
	Circuit            string  `json:"circuit"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	Scheme             string  `json:"scheme"`
	CoreBudget         int     `json:"core_budget"`
	PipelineWorkers    int     `json:"pipeline_workers"`
	IntraWorkers       int     `json:"intra_workers"`
	PipelineSerialized bool    `json:"pipeline_serialized"`
	WallNs             int64   `json:"wall_ns"`
	CriticalNs         int64   `json:"critical_ns"`
	Speedup            float64 `json:"speedup"`
}

// figCoreScale sweeps the core budget from 1 to maxCores on one circuit:
// budget 1 is the serial baseline; larger budgets run the combined WavePipe
// scheme with 2-4 pipeline workers and hand the remainder to the intra-point
// gangs. Speedups use the critical-path timing model, so the sweep is
// meaningful (if noisier) even on hosts with fewer physical cores than the
// budget — the recorded GOMAXPROCS and pipeline_serialized fields say how
// much of each point was measured concurrently.
func figCoreScale(benchName string, maxCores int, jsonOut bool) error {
	if maxCores <= 0 {
		maxCores = runtime.NumCPU()
	}
	b, ok := findBench(benchName)
	if !ok {
		return fmt.Errorf("no benchmark circuit %q", benchName)
	}
	sys, err := build(b)
	if err != nil {
		return err
	}
	base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
	var records []coreScaleRecord
	var serialCrit int64
	for budget := 1; budget <= maxCores; budget++ {
		opts := base
		opts.CoreBudget = budget
		if budget == 1 {
			opts.Scheme = wavepipe.Serial
		} else {
			// Split policy: see wpcore.PlanThreads.
			opts.Scheme = wavepipe.Combined
			opts.Threads = wpcore.PlanThreads(budget)
		}
		wall, res, err := timed(sys, opts)
		if err != nil {
			return err
		}
		if budget == 1 {
			serialCrit = res.Stats.CriticalNanos
		}
		records = append(records, coreScaleRecord{
			Circuit:            b.Name,
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			Scheme:             opts.Scheme.String(),
			CoreBudget:         budget,
			PipelineWorkers:    res.Stats.PipelineWorkers,
			IntraWorkers:       res.Stats.IntraWorkers,
			PipelineSerialized: res.Stats.PipelineSerialized,
			WallNs:             wall.Nanoseconds(),
			CriticalNs:         res.Stats.CriticalNanos,
			Speedup:            float64(serialCrit) / float64(res.Stats.CriticalNanos),
		})
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	fmt.Printf("Figure F7: speedup vs core budget (%s, GOMAXPROCS=%d)\n", b.Name, runtime.GOMAXPROCS(0))
	fmt.Println("budget,scheme,pipeline,intra,serialized,wall_ms,crit_ms,speedup")
	for _, r := range records {
		fmt.Printf("%d,%s,%d,%d,%v,%.2f,%.2f,%.2f\n",
			r.CoreBudget, r.Scheme, r.PipelineWorkers, r.IntraWorkers, r.PipelineSerialized,
			float64(r.WallNs)/1e6, float64(r.CriticalNs)/1e6, r.Speedup)
	}
	return nil
}

// bypassScaleRecord is one point of the incremental-assembly sweep.
type bypassScaleRecord struct {
	Circuit      string `json:"circuit"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Scheme       string `json:"scheme"`
	Threads      int    `json:"threads"`
	DeviceBypass bool   `json:"device_bypass"`
	WallNs       int64  `json:"wall_ns"`
	CriticalNs   int64  `json:"critical_ns"`
	// Speedup is against the serial bypass-off baseline of the same circuit
	// (critical-path timing model), so the device-level and pipeline-level
	// gains compose in one column.
	Speedup         float64 `json:"speedup"`
	Points          int     `json:"points"`
	NRIters         int     `json:"nr_iters"`
	BypassedEvals   int64   `json:"bypassed_evals"`
	LinearStampHits int64   `json:"linear_stamp_hits"`
	// LinearHitRate is LinearStampHits per Newton iteration (every iteration
	// performs one device load); BypassPerIter is the mean number of device
	// evaluations answered by journal replay per load.
	LinearHitRate float64 `json:"linear_hit_rate"`
	BypassPerIter float64 `json:"bypass_per_iter"`
}

// figBypassScale measures how the incremental assembly engine (linear-stamp
// template caching + SPICE-style device bypass) composes with WavePipe
// pipelining: serial and combined 2-4T, each with device bypass off and on,
// reported against the serial bypass-off baseline (reconstruction F8).
func figBypassScale(benchName string, jsonOut bool) error {
	var records []bypassScaleRecord
	for _, b := range circuits.Suite() {
		if benchName != "all" && b.Name != benchName {
			continue
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		type cfg struct {
			scheme  wavepipe.Scheme
			threads int
		}
		cfgs := []cfg{{wavepipe.Serial, 1}, {wavepipe.Combined, 2}, {wavepipe.Combined, 3}, {wavepipe.Combined, 4}}
		var serialCrit int64
		for _, c := range cfgs {
			for _, bypass := range []bool{false, true} {
				opts := base
				opts.Scheme = c.scheme
				if c.scheme != wavepipe.Serial {
					opts.Threads = c.threads
				}
				opts.DeviceBypass = bypass
				wall, res, err := timed(sys, opts)
				if err != nil {
					return err
				}
				if c.scheme == wavepipe.Serial && !bypass {
					serialCrit = res.Stats.CriticalNanos
				}
				rec := bypassScaleRecord{
					Circuit:         b.Name,
					GOMAXPROCS:      runtime.GOMAXPROCS(0),
					Scheme:          opts.Scheme.String(),
					Threads:         c.threads,
					DeviceBypass:    bypass,
					WallNs:          wall.Nanoseconds(),
					CriticalNs:      res.Stats.CriticalNanos,
					Speedup:         float64(serialCrit) / float64(res.Stats.CriticalNanos),
					Points:          res.Stats.Points,
					NRIters:         res.Stats.NRIters,
					BypassedEvals:   res.Stats.BypassedEvals,
					LinearStampHits: res.Stats.LinearStampHits,
				}
				if res.Stats.NRIters > 0 {
					rec.LinearHitRate = float64(res.Stats.LinearStampHits) / float64(res.Stats.NRIters)
					rec.BypassPerIter = float64(res.Stats.BypassedEvals) / float64(res.Stats.NRIters)
				}
				records = append(records, rec)
			}
		}
	}
	if len(records) == 0 {
		return fmt.Errorf("no benchmark circuit %q", benchName)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	fmt.Printf("Figure F8: incremental assembly x WavePipe (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Println("circuit,scheme,threads,devbypass,wall_ms,crit_ms,speedup,points,nr_iters,linear_hit_rate,bypass_per_iter")
	for _, r := range records {
		fmt.Printf("%s,%s,%d,%v,%.2f,%.2f,%.2f,%d,%d,%.3f,%.2f\n",
			r.Circuit, r.Scheme, r.Threads, r.DeviceBypass,
			float64(r.WallNs)/1e6, float64(r.CriticalNs)/1e6, r.Speedup,
			r.Points, r.NRIters, r.LinearHitRate, r.BypassPerIter)
	}
	fmt.Println("speedup is vs the serial devbypass=false baseline (critical-path model)")
	return nil
}

// figLoadScale prints the sharded-vs-colored assembly comparison: one full
// device load at 1/2/4 workers under both strategies, per suite circuit.
func figLoadScale() error {
	fmt.Println("Figure F6: device-load assembly scaling, sharded vs colored (ns per load)")
	fmt.Printf("%-10s %8s %10s %10s %10s %10s %8s %8s\n",
		"circuit", "serial", "shard2", "shard4", "color2", "color4", "sp2", "sp4")
	for _, b := range circuits.Suite() {
		sys, err := build(b)
		if err != nil {
			return err
		}
		serial := measureLoadNs(sys, circuit.LoadAuto, 1)
		sh2 := measureLoadNs(sys, circuit.LoadSharded, 2)
		sh4 := measureLoadNs(sys, circuit.LoadSharded, 4)
		co2 := measureLoadNs(sys, circuit.LoadColored, 2)
		co4 := measureLoadNs(sys, circuit.LoadColored, 4)
		fmt.Printf("%-10s %8d %10d %10d %10d %10d %8.2f %8.2f\n",
			b.Name, serial, sh2, sh4, co2, co4,
			float64(sh2)/float64(co2), float64(sh4)/float64(co4))
	}
	fmt.Println("sp2/sp4: sharded-vs-colored time ratio at the same worker count (>1 favours colored)")
	return nil
}

// laneScaleRecord is one point of the batched-ensemble throughput sweep.
type laneScaleRecord struct {
	Circuit    string `json:"circuit"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Lanes      int    `json:"lanes"`
	Workers    int    `json:"workers"`
	Rounds     int    `json:"rounds"`
	Points     int    `json:"points"`
	WallNs     int64  `json:"wall_ns"`
	CriticalNs int64  `json:"critical_ns"`
	// SerialNs is the summed critical path of K independent serial runs of
	// the same variants — the workload a corner sweep pays without batching.
	SerialNs int64 `json:"serial_ns"`
	// Speedup is SerialNs over the ensemble gang's critical path
	// (critical-path timing model, as in every other figure).
	Speedup float64 `json:"speedup"`
}

// laneVariants builds k structurally identical copies of a benchmark
// circuit with every resistor scaled by a per-lane corner factor, the shape
// of a PVT corner sweep.
func laneVariants(b circuits.Benchmark, k int) []*wavepipe.Circuit {
	variants := make([]*wavepipe.Circuit, k)
	for i := range variants {
		c := b.Make()
		scale := 1 + 0.1*float64(i)/float64(k)
		for _, d := range c.Devices() {
			if r, ok := d.(*device.Resistor); ok {
				r.SetValue(r.Value() * scale)
			}
		}
		variants[i] = c
	}
	return variants
}

// timedEnsemble is timed for ensemble runs: best critical path over -reps
// with the collector paused, mirroring the serial measurement protocol.
func timedEnsemble(variants []*wavepipe.Circuit, opts wavepipe.TranOptions) (time.Duration, *wavepipe.EnsembleResult, error) {
	opts.Observer = benchObserver
	var best time.Duration
	var bestCrit int64
	var res *wavepipe.EnsembleResult
	for i := 0; i < *reps; i++ {
		runtime.GC()
		old := debug.SetGCPercent(-1)
		start := time.Now()
		r, err := wavepipe.RunEnsembleCircuits(variants, opts)
		d := time.Since(start)
		debug.SetGCPercent(old)
		if err != nil {
			return 0, nil, err
		}
		for li, lr := range r.Lanes {
			if lr.Err != nil {
				return 0, nil, fmt.Errorf("lane %d: %w", li, lr.Err)
			}
		}
		if i == 0 || r.Stats.CriticalNanos < bestCrit {
			best = d
			bestCrit = r.Stats.CriticalNanos
			res = r
		}
	}
	return best, res, nil
}

// figLaneScale measures batched-ensemble throughput: K corner variants of
// one circuit run as lockstep lanes versus the same K variants run as
// independent serial jobs. The baseline is the sum of the serial runs'
// critical paths; the ensemble cost is the gang's measured critical path
// (sum over rounds of the slowest worker chunk), so the figure reports how
// much of the K-fold workload the shared symbolic analysis and
// struct-of-arrays batching recover.
func figLaneScale(jsonOut bool) error {
	var records []laneScaleRecord
	for _, name := range []string{"ladder400", "grid16"} {
		b, ok := findBench(name)
		if !ok {
			return fmt.Errorf("no benchmark circuit %q", name)
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		for _, k := range []int{2, 4, 8} {
			variants := laneVariants(b, k)

			var serialCrit int64
			for _, v := range variants {
				sys, err := v.Build()
				if err != nil {
					return err
				}
				_, res, err := timed(sys, base)
				if err != nil {
					return err
				}
				serialCrit += res.Stats.CriticalNanos
			}

			opts := base
			opts.Threads = k
			if opts.Threads > 4 {
				opts.Threads = 4
			}
			wall, res, err := timedEnsemble(laneVariants(b, k), opts)
			if err != nil {
				return err
			}
			points := 0
			for _, lr := range res.Lanes {
				points += lr.Res.Stats.Points
			}
			records = append(records, laneScaleRecord{
				Circuit:    b.Name,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
				Lanes:      k,
				Workers:    res.Stats.PipelineWorkers,
				Rounds:     res.Rounds,
				Points:     points,
				WallNs:     wall.Nanoseconds(),
				CriticalNs: res.Stats.CriticalNanos,
				SerialNs:   serialCrit,
				Speedup:    float64(serialCrit) / float64(res.Stats.CriticalNanos),
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	fmt.Printf("Figure F9: ensemble throughput vs lane count (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Println("circuit,lanes,workers,rounds,points,wall_ms,crit_ms,serial_ms,speedup")
	for _, r := range records {
		fmt.Printf("%s,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f\n",
			r.Circuit, r.Lanes, r.Workers, r.Rounds, r.Points,
			float64(r.WallNs)/1e6, float64(r.CriticalNs)/1e6,
			float64(r.SerialNs)/1e6, r.Speedup)
	}
	return nil
}

// windowScaleRecord is one point of the time-parallel window sweep.
type windowScaleRecord struct {
	Circuit         string  `json:"circuit"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Mode            string  `json:"mode"` // serial | wavepipe | windows | windows-fast
	CoreBudget      int     `json:"core_budget"`
	Windows         int     `json:"windows"`
	Gate            float64 `json:"gate,omitempty"`
	Threads         int     `json:"threads"`
	WindowsLaunched int64   `json:"windows_launched"`
	PararealIters   int64   `json:"parareal_iters"`
	WindowRedos     int64   `json:"window_redos"`
	WallNs          int64   `json:"wall_ns"`
	CriticalNs      int64   `json:"critical_ns"`
	Speedup         float64 `json:"speedup"`
	RelMaxDev       float64 `json:"rel_max_dev"`
}

// figWindowScale sweeps time-parallel window count against core budget:
// for every budget (powers of two up to maxCores) it records the serial
// baseline, the best WavePipe-only configuration at that budget
// (combined scheme, wpcore.PlanThreads width), and windowed runs at
// W = 2/4/8 with serial fine engines — once at the accuracy-first
// default gate and once at the speed tier (gate 32, "windows-fast"),
// which accepts coarse seeds within 32 fine error weights and trades a
// small bounded seam deviation for fewer redos. Speedups use the critical-path
// timing model (windowed runs model the coarse lane + window schedule),
// and every record carries the probe's relative deviation from the serial
// waveform so accuracy rides along with the numbers.
func figWindowScale(benchName string, maxCores int, jsonOut bool) error {
	if maxCores <= 0 {
		maxCores = runtime.NumCPU()
	}
	names := []string{"ladder400", "grid16", "rect1k", "amp10M"}
	if benchName != "" && benchName != "all" {
		names = []string{benchName}
	}
	var budgets []int
	for b := 1; b <= maxCores; b *= 2 {
		budgets = append(budgets, b)
	}
	if budgets[len(budgets)-1] != maxCores {
		budgets = append(budgets, maxCores)
	}
	var records []windowScaleRecord
	for _, name := range names {
		b, ok := findBench(name)
		if !ok {
			return fmt.Errorf("no benchmark circuit %q", name)
		}
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		wall, ref, err := timed(sys, base)
		if err != nil {
			return err
		}
		serialCrit := ref.Stats.CriticalNanos
		add := func(mode string, W int, opts wavepipe.TranOptions) error {
			wall, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			dev, err := wavepipe.Compare(res.W, ref.W, b.Probe)
			if err != nil {
				return err
			}
			records = append(records, windowScaleRecord{
				Circuit:         b.Name,
				GOMAXPROCS:      runtime.GOMAXPROCS(0),
				Mode:            mode,
				CoreBudget:      opts.CoreBudget,
				Windows:         W,
				Threads:         opts.Threads,
				Gate:            opts.CoarseOpts.Gate,
				WindowsLaunched: res.Stats.WindowsLaunched,
				PararealIters:   res.Stats.PararealIters,
				WindowRedos:     res.Stats.WindowRedos,
				WallNs:          wall.Nanoseconds(),
				CriticalNs:      res.Stats.CriticalNanos,
				Speedup:         float64(serialCrit) / float64(res.Stats.CriticalNanos),
				RelMaxDev:       dev.RelMax(),
			})
			return nil
		}
		records = append(records, windowScaleRecord{
			Circuit: b.Name, GOMAXPROCS: runtime.GOMAXPROCS(0), Mode: "serial",
			CoreBudget: 1, WallNs: wall.Nanoseconds(), CriticalNs: serialCrit, Speedup: 1,
		})
		for _, budget := range budgets {
			if budget < 2 {
				continue
			}
			wp := base
			wp.Scheme = wavepipe.Combined
			wp.Threads = wpcore.PlanThreads(budget)
			wp.CoreBudget = budget
			if err := add("wavepipe", 0, wp); err != nil {
				return err
			}
			for _, W := range []int{2, 4, 8} {
				wo := base
				wo.Windows = W
				wo.CoreBudget = budget
				if err := add("windows", W, wo); err != nil {
					return err
				}
				wo.CoarseOpts.Gate = 32
				if err := add("windows-fast", W, wo); err != nil {
					return err
				}
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	fmt.Printf("Figure F10: time-parallel windows vs best WavePipe-only (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Println("circuit,budget,mode,windows,threads,redos,wall_ms,crit_ms,speedup,rel_max_dev")
	for _, r := range records {
		fmt.Printf("%s,%d,%s,%d,%d,%d,%.2f,%.2f,%.2f,%.2e\n",
			r.Circuit, r.CoreBudget, r.Mode, r.Windows, r.Threads, r.WindowRedos,
			float64(r.WallNs)/1e6, float64(r.CriticalNs)/1e6, r.Speedup, r.RelMaxDev)
	}
	return nil
}

// reduceScaleRecord is one point of the parasitic-reduction sweep.
type reduceScaleRecord struct {
	Circuit        string  `json:"circuit"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Mode           string  `json:"mode"` // off | reduced | exact
	Tol            float64 `json:"tol"`
	FullNodes      int     `json:"full_nodes"`
	Nodes          int     `json:"nodes"` // MNA nodes actually simulated
	ReducedNodes   int64   `json:"reduced_nodes"`
	ReducedDevices int64   `json:"reduced_devices"`
	NodeReduction  float64 `json:"node_reduction"` // full_nodes / nodes
	Points         int     `json:"points"`
	WallNs         int64   `json:"wall_ns"`
	CriticalNs     int64   `json:"critical_ns"`
	Speedup        float64 `json:"speedup"` // off wall / this wall (end to end)
	RelMaxDev      float64 `json:"rel_max_dev"`
}

// figReduceScale sweeps the structural parasitic-reduction pass over RC
// ladders of growing length plus the grid16 mesh as a negative control
// (every mesh node carries four devices, so the pass is a provable
// no-op there). Each circuit runs three ways on one thread: reduction
// off (the reference), reduction on at the default tolerance, and
// exact mode (ReduceTol=0, series merges only — bit-identical by
// construction on these decks because the lumping stage is what the
// ladders exercise). The reduced runs pay for planning and rebuilding
// the smaller system inside the timed region, so Speedup is the honest
// end-to-end wall ratio, and every record carries the probe's relative
// deviation from the unreduced waveform.
func figReduceScale(benchName string, jsonOut bool) error {
	ladder := func(n int) circuits.Benchmark {
		return circuits.Benchmark{
			Name:  fmt.Sprintf("ladder%d", n),
			Kind:  "analog",
			Make:  func() *circuit.Circuit { return circuits.RCLadder(n) },
			TStop: 100e-9,
			Probe: "out",
		}
	}
	benches := []circuits.Benchmark{ladder(100), ladder(200), ladder(400), ladder(800)}
	if grid, ok := findBench("grid16"); ok {
		benches = append(benches, grid)
	}
	if benchName != "" && benchName != "all" {
		kept := benches[:0]
		for _, b := range benches {
			if b.Name == benchName {
				kept = append(kept, b)
			}
		}
		if len(kept) == 0 {
			b, ok := findBench(benchName)
			if !ok {
				return fmt.Errorf("no benchmark circuit %q", benchName)
			}
			kept = append(kept, b)
		}
		benches = kept
	}
	var records []reduceScaleRecord
	for _, b := range benches {
		sys, err := build(b)
		if err != nil {
			return err
		}
		base := wavepipe.TranOptions{TStop: window(b), Record: []string{b.Probe}}
		offWall, ref, err := timed(sys, base)
		if err != nil {
			return err
		}
		records = append(records, reduceScaleRecord{
			Circuit: b.Name, GOMAXPROCS: runtime.GOMAXPROCS(0), Mode: "off",
			FullNodes: sys.NumNodes, Nodes: sys.NumNodes, NodeReduction: 1,
			Points: ref.Stats.Points, WallNs: offWall.Nanoseconds(),
			CriticalNs: ref.Stats.CriticalNanos, Speedup: 1,
		})
		run := func(mode string, tol float64) error {
			opts := base
			opts.Reduce = true
			opts.ReduceTol = tol
			wall, res, err := timed(sys, opts)
			if err != nil {
				return err
			}
			dev, err := wavepipe.Compare(res.W, ref.W, b.Probe)
			if err != nil {
				return err
			}
			post := sys.NumNodes - int(res.Stats.ReducedNodes)
			records = append(records, reduceScaleRecord{
				Circuit: b.Name, GOMAXPROCS: runtime.GOMAXPROCS(0), Mode: mode,
				Tol:            tol,
				FullNodes:      sys.NumNodes,
				Nodes:          post,
				ReducedNodes:   res.Stats.ReducedNodes,
				ReducedDevices: res.Stats.ReducedDevices,
				NodeReduction:  float64(sys.NumNodes) / float64(post),
				Points:         res.Stats.Points,
				WallNs:         wall.Nanoseconds(),
				CriticalNs:     res.Stats.CriticalNanos,
				Speedup:        float64(offWall.Nanoseconds()) / float64(wall.Nanoseconds()),
				RelMaxDev:      dev.RelMax(),
			})
			return nil
		}
		if err := run("reduced", wavepipe.DefaultReduceTol); err != nil {
			return err
		}
		if err := run("exact", 0); err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	fmt.Printf("Figure F11: parasitic reduction vs ladder size (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Println("circuit,mode,tol,full_nodes,nodes,node_reduction,points,wall_ms,crit_ms,speedup,rel_max_dev")
	for _, r := range records {
		fmt.Printf("%s,%s,%g,%d,%d,%.1f,%d,%.2f,%.2f,%.2f,%.2e\n",
			r.Circuit, r.Mode, r.Tol, r.FullNodes, r.Nodes, r.NodeReduction, r.Points,
			float64(r.WallNs)/1e6, float64(r.CriticalNs)/1e6, r.Speedup, r.RelMaxDev)
	}
	return nil
}
