package main

import (
	"testing"
	"time"

	"wavepipe/internal/circuits"
)

func TestFindBench(t *testing.T) {
	for _, b := range circuits.Suite() {
		got, ok := findBench(b.Name)
		if !ok || got.Name != b.Name {
			t.Fatalf("findBench(%q) failed", b.Name)
		}
	}
	if _, ok := findBench("nope"); ok {
		t.Fatal("findBench invented a circuit")
	}
}

func TestUnitHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != 1.5 {
		t.Fatalf("ms = %g", got)
	}
	if got := nanosMS(2_500_000); got != 2.5 {
		t.Fatalf("nanosMS = %g", got)
	}
}

func TestTable1Renders(t *testing.T) {
	// Table 1 builds every suite circuit; it must succeed end to end.
	if err := table1(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowQuickScaling(t *testing.T) {
	b, _ := findBench("ring9")
	full := window(b)
	*quick = true
	defer func() { *quick = false }()
	if got := window(b); got != full/5 {
		t.Fatalf("quick window = %g, want %g", got, full/5)
	}
}
