package wavepipe

// Deck-driven integration tests: every SPICE deck under testdata/ is
// simulated with the serial engine and every WavePipe scheme, and the
// pipelined waveforms must track serial within tolerance-scale deviation —
// the reproduction's central invariant, exercised on realistic mixed
// circuits (op-amp filter, CMOS latch, switched transformer, ECL gate,
// hierarchical RC sections). Decks carrying .AC or .DC cards additionally
// run those analyses.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deckProbe names the signal each deck's comparison uses.
var deckProbe = map[string]string{
	"opamp_filter.sp":  "out",
	"cmos_latch.sp":    "q",
	"flyback.sp":       "out",
	"ecl_gate.sp":      "out",
	"subckt_filter.sp": "out",
	"grid16.sp":        "n8_8",
}

// edgeDecks holds circuits with regenerative gain stages, where pointwise
// and RMS comparisons measure edge-placement jitter rather than solution
// quality (two serial runs at different tolerances differ the same way);
// their acceptance gate is endpoint agreement plus the edge-timing test.
var edgeDecks = map[string]bool{
	"cmos_latch.sp": true,
	"ecl_gate.sp":   true,
}

func loadDecks(t *testing.T) map[string]*Deck {
	t.Helper()
	files, err := filepath.Glob("testdata/*.sp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata decks: %v", err)
	}
	decks := make(map[string]*Deck)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ParseDeck(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		decks[filepath.Base(f)] = d
	}
	return decks
}

func TestDecksTransientAllSchemes(t *testing.T) {
	for name, deck := range loadDecks(t) {
		probe, ok := deckProbe[name]
		if !ok {
			t.Fatalf("no probe registered for %s", name)
		}
		ref, err := RunDeck(deck, TranOptions{Record: []string{probe}})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		if ref.Stats.Points < 20 {
			t.Fatalf("%s: suspiciously few points (%d)", name, ref.Stats.Points)
		}
		lo, hi, err := ref.W.Extremes(probe)
		if err != nil {
			t.Fatal(err)
		}
		if hi-lo < 1e-3 {
			t.Fatalf("%s: probe %s never moves (range %g)", name, probe, hi-lo)
		}
		for _, scheme := range []Scheme{Backward, Forward, Combined, FineGrained} {
			res, err := RunDeck(deck, TranOptions{
				Record: []string{probe}, Scheme: scheme, Threads: 3,
			})
			if err != nil {
				t.Fatalf("%s %v: %v", name, scheme, err)
			}
			dev, err := Compare(res.W, ref.W, probe)
			if err != nil {
				t.Fatal(err)
			}
			if !edgeDecks[name] {
				if rms := dev.RMS / dev.Range; rms > 0.02 {
					t.Errorf("%s %v: RMS deviation %.4f of range", name, scheme, rms)
				}
			}
			tEnd := ref.W.Times[ref.W.Len()-1]
			a, _ := res.W.At(probe, tEnd)
			b, _ := ref.W.At(probe, tEnd)
			if math.Abs(a-b) > 0.05*dev.Range {
				t.Errorf("%s %v: endpoint %.4g vs %.4g", name, scheme, a, b)
			}
		}
	}
}

func TestDecksACCards(t *testing.T) {
	decks := loadDecks(t)

	// The op-amp filter is a second-order low-pass: the response must fall
	// monotonically past the corner and reach a steep rolloff.
	res, err := RunDeckAC(decks["opamp_filter.sp"], ACOptions{Record: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	db, err := res.MagDB("out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(db[0]) > 0.2 {
		t.Fatalf("passband gain = %g dB, want ≈0", db[0])
	}
	last := db[len(db)-1]
	if last > -40 {
		t.Fatalf("stopband only %g dB down at %g Hz", last, res.Freqs[len(res.Freqs)-1])
	}
	// Second-order slope: ≈ −40 dB/decade far above the corner.
	k := len(db) - 1
	slope := (db[k] - db[k-10]) // 10 points per decade
	if slope > -30 || slope < -50 {
		t.Fatalf("rolloff slope %g dB/dec, want ≈−40", slope)
	}

	// Three cascaded RC sections: third-order rolloff.
	res2, err := RunDeckAC(decks["subckt_filter.sp"], ACOptions{Record: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	db2, _ := res2.MagDB("out")
	if db2[len(db2)-1] > -45 {
		t.Fatalf("cascade stopband = %g dB", db2[len(db2)-1])
	}
}

func TestDecksDCCards(t *testing.T) {
	decks := loadDecks(t)
	sweep, err := RunDeckDC(decks["ecl_gate.sp"], []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	// ECL transfer curve: output low when the input is below VREF, high
	// above it, switching near −1.3 V. QF is a non-inverting follower of
	// the reference-side collector.
	vLow, _ := sweep.At("out", -2.0)
	vHigh, _ := sweep.At("out", -0.6)
	if vHigh-vLow < 0.4 {
		t.Fatalf("ECL logic swing = %g (low %g, high %g)", vHigh-vLow, vLow, vHigh)
	}
	// The transition must happen near the reference voltage.
	mid := (vLow + vHigh) / 2
	cross, err := sweep.CrossingTimes("out", mid, 0)
	if err != nil || len(cross) == 0 {
		t.Fatalf("no switching threshold found: %v", err)
	}
	if cross[0] < -1.5 || cross[0] > -1.1 {
		t.Fatalf("switching threshold at %g, want ≈−1.3", cross[0])
	}
}

// Edge timing must agree between serial and pipelined runs on the
// gain-stage circuits where pointwise comparison is jitter-dominated.
func TestDecksEdgeTiming(t *testing.T) {
	decks := loadDecks(t)
	for _, name := range []string{"ecl_gate.sp", "cmos_latch.sp"} {
		probe := deckProbe[name]
		ref, err := RunDeck(decks[name], TranOptions{Record: []string{probe}})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, _ := ref.W.Extremes(probe)
		mid := (lo + hi) / 2
		refCross, err := ref.W.CrossingTimes(probe, mid, +1)
		if err != nil || len(refCross) == 0 {
			t.Fatalf("%s: no reference edges", name)
		}
		for _, scheme := range []Scheme{Backward, Forward, Combined} {
			res, err := RunDeck(decks[name], TranOptions{Record: []string{probe}, Scheme: scheme, Threads: 3})
			if err != nil {
				t.Fatal(err)
			}
			cross, err := res.W.CrossingTimes(probe, mid, +1)
			if err != nil || len(cross) == 0 {
				t.Fatalf("%s %v: no edges", name, scheme)
			}
			// First rising edge within 100 ps of serial's.
			if d := math.Abs(cross[0] - refCross[0]); d > 100e-12 {
				t.Errorf("%s %v: first edge shifted by %.3g s", name, scheme, d)
			}
		}
	}
}

func TestDeckMeasurements(t *testing.T) {
	decks := loadDecks(t)
	res, err := RunDeck(decks["cmos_latch.sp"], TranOptions{Record: []string{"q", "qb", "set"}})
	if err != nil {
		t.Fatal(err)
	}
	// The latch output q must end high and complementary to qb.
	q, _ := res.W.At("q", 20e-9)
	qb, _ := res.W.At("qb", 20e-9)
	if q < 1.5 || qb > 0.3 {
		t.Fatalf("latch end state q=%g qb=%g", q, qb)
	}
	// Rise time of q is resolvable and sub-nanosecond.
	rt, err := res.W.RiseTime("q")
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 || rt > 2e-9 {
		t.Fatalf("latch rise time = %g", rt)
	}
	// Propagation: q responds after the set edge.
	d, err := res.W.Delay("set", +1, "q", +1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 5e-9 {
		t.Fatalf("set→q delay = %g", d)
	}
}

func TestDeckRoundTripsThroughWriter(t *testing.T) {
	for name, deck := range loadDecks(t) {
		if strings.Contains(name, "subckt") {
			continue // writer emits the flattened circuit; node names differ
		}
		var sb strings.Builder
		if err := WriteDeck(&sb, deck); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d2, err := ParseDeck(sb.String())
		if err != nil {
			t.Fatalf("%s reparse: %v\n%s", name, err, sb.String())
		}
		if len(d2.Circuit.Devices()) != len(deck.Circuit.Devices()) {
			t.Fatalf("%s: device count changed %d -> %d", name,
				len(deck.Circuit.Devices()), len(d2.Circuit.Devices()))
		}
	}
}
