three cascaded RC sections via subcircuits
.subckt rcsec a b
R1 a b 1k
C1 b 0 100p
.ends
VIN in 0 PULSE(0 1 10n 1n 1n 500n 1u) AC 1
X1 in m1 rcsec
X2 m1 m2 rcsec
X3 m2 out rcsec
.ac dec 8 100k 100meg
.tran 1n 1u
.end
