single ECL gate with dc transfer sweep
.model qfast npn(is=1e-16 bf=100 tf=0.1n cje=0.5p cjc=0.3p vaf=60)
VEE vee 0 DC -5.2
VREF vref 0 DC -1.3
VIN in 0 PULSE(-1.7 -0.9 1n 0.3n 0.3n 4n 10n)
Q1 c1 in e qfast
Q2 c2 vref e qfast
RC1 0 c1 220
RC2 0 c2 220
RT e vee 780
QF 0 c2 out qfast
RF out vee 2k
CL out 0 100f
.dc VIN -2 -0.6 0.05
.tran 0.05n 20n
.end
