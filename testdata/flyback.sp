switched transformer with rectified output
.model dsw d(is=1e-12 n=1.1 tt=5n cj0=5p)
.model drive sw(ron=0.2 roff=10meg vt=0.9 dv=0.1)
VIN vin 0 DC 5
VCTL ctl 0 PULSE(0 1.8 0.2u 50n 50n 2u 5u)
L1 vin sw1 100u
L2 sec 0 400u
K1 L1 L2 0.95
S1 sw1 0 ctl 0 drive
* RC snubber clamps the leakage spike when the switch opens
RSN sw1 sn 100
CSN sn 0 1n
D1 sec out dsw
CO out 0 1u
RO out 0 1k
.tran 0.1u 40u
.end
