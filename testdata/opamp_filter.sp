active low-pass filter with ideal-opamp VCVS stage
* Sallen-Key-style unity-gain stage: E1 models the op-amp follower.
V1 in 0 DC 0 AC 1 SIN(0 0.5 2k)
R1 in n1 10k
R2 n1 n2 10k
C1 n1 out 3.3n
C2 n2 0 1.5n
E1 out 0 n2 out 100k
.ac dec 10 10 1meg
.tran 5u 2m
.end
