cross-coupled CMOS latch with set pulse
.model nch nmos(vto=0.5 kp=120u lambda=0.06)
.model pch pmos(vto=-0.55 kp=50u lambda=0.06)
VDD vdd 0 1.8
VSET set 0 PULSE(0 1.8 2n 0.2n 0.2n 3n 100n)
* inverter A: input qb, output q
MPA q qb vdd vdd pch w=2u l=0.5u
MNA q qb 0 0 nch w=1u l=0.5u
* inverter B: input q, output qb
MPB qb q vdd vdd pch w=2u l=0.5u
MNB qb q 0 0 nch w=1u l=0.5u
CQ q 0 5f
CQB qb 0 5f
* set device pulls qb low, flipping q high
MSET qb set 0 0 nch w=2u l=0.5u
.tran 0.1n 20n
.end
