package wire

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wavepipe"
)

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// jsonEqual compares two JSON documents structurally.
func jsonEqual(t *testing.T, a, b []byte) bool {
	t.Helper()
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		t.Fatal(err)
	}
	return reflect.DeepEqual(va, vb)
}

// TestJobRequestGoldenRoundTrip: golden JSON → wire → facade → wire → JSON
// reproduces the document exactly. The golden file pins the schema: any
// rename or retype of a wire field breaks this test.
func TestJobRequestGoldenRoundTrip(t *testing.T) {
	golden := readGolden(t, "job_request.golden.json")
	req, err := DecodeJobRequest(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.Options.ToTranOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Scheme != wavepipe.Combined || opts.Method != wavepipe.Trapezoidal ||
		opts.LoadMode != wavepipe.LoadColored {
		t.Fatalf("enum decode: scheme=%v method=%v", opts.Scheme, opts.Method)
	}
	if opts.Deadline.Seconds() != 30 {
		t.Fatalf("deadline = %v, want 30s", opts.Deadline)
	}
	back := FromTranOptions(opts)
	out := JobRequest{
		SchemaVersion: SchemaVersion,
		Deck:          req.Deck,
		Options:       &back,
		Priority:      req.Priority,
		Label:         req.Label,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, out); err != nil {
		t.Fatal(err)
	}
	if !jsonEqual(t, golden, buf.Bytes()) {
		t.Fatalf("round trip drifted from golden:\n got: %s\nwant: %s", buf.Bytes(), golden)
	}
}

// TestResultGoldenRoundTrip: the result document survives wire → facade →
// wire untouched, and the rebuilt waveform set answers queries.
func TestResultGoldenRoundTrip(t *testing.T) {
	golden := readGolden(t, "result.golden.json")
	wres, err := DecodeResult(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	res, err := wres.ToResult()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := res.W.At("out", 2e-9); err != nil || v != 0.86 {
		t.Fatalf("rebuilt waveform At = %g, %v", v, err)
	}
	if res.Stats.Points != 3 || res.Stats.CriticalNanos != 123456 {
		t.Fatalf("stats drifted: %+v", res.Stats)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, FromResult(res)); err != nil {
		t.Fatal(err)
	}
	if !jsonEqual(t, golden, buf.Bytes()) {
		t.Fatalf("round trip drifted from golden:\n got: %s\nwant: %s", buf.Bytes(), golden)
	}
}

// TestStatsRoundTripCoversEveryField uses reflection to guarantee no Stats
// field is silently dropped by the wire conversion: a struct with every
// field set to a distinct nonzero value must survive unchanged.
func TestStatsRoundTripCoversEveryField(t *testing.T) {
	var s wavepipe.Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i + 1))
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("unhandled Stats field kind %v — extend the wire schema", f.Kind())
		}
	}
	if got := FromStats(s).ToStats(); !reflect.DeepEqual(got, s) {
		t.Fatalf("stats dropped on the wire:\n got %+v\nwant %+v", got, s)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	doc := `{"schemaVersion":1,"deck":"x","bogus":true}`
	if _, err := DecodeJobRequest(strings.NewReader(doc)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	doc = `{"schemaVersion":1,"deck":"x","options":{"tstop":1,"bogus":2}}`
	if _, err := DecodeJobRequest(strings.NewReader(doc)); err == nil {
		t.Fatal("unknown option field accepted")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	for _, doc := range []string{
		`{"schemaVersion":2,"deck":"x"}`,
		`{"deck":"x"}`, // missing version decodes as 0
	} {
		if _, err := DecodeJobRequest(strings.NewReader(doc)); err == nil {
			t.Fatalf("document %s accepted", doc)
		}
	}
}

func TestResultShapeValidation(t *testing.T) {
	bad := &Result{
		SchemaVersion: SchemaVersion,
		Signals:       []string{"a"},
		Times:         []float64{0, 1},
		Data:          [][]float64{{0}},
	}
	if _, err := bad.ToResult(); err == nil {
		t.Fatal("times/rows mismatch accepted")
	}
	bad = &Result{
		SchemaVersion: SchemaVersion,
		Signals:       []string{"a"},
		Times:         []float64{0, 0},
		Data:          [][]float64{{0}, {1}},
	}
	if _, err := bad.ToResult(); err == nil {
		t.Fatal("non-ascending times accepted")
	}
}
