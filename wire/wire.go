// Package wire defines the versioned JSON schema shared by every wavepipe
// serialization surface: the wavesimd HTTP API, the wavepipe/client HTTP
// client, and wavesim's -json output all speak these types, so a result
// written by one tool is readable by the others.
//
// Every top-level document carries a schemaVersion field and decoding
// rejects both unknown fields and version mismatches — a client from the
// future fails loudly instead of silently dropping options it meant to set.
// Enumerations travel as their stable string names (Scheme.String,
// Method.String, LoadModeName) and durations as Go duration strings, so
// documents stay readable and diffable.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"wavepipe"
)

// SchemaVersion is the version stamped into and required of every
// top-level wire document.
const SchemaVersion = 1

// TranOptions is the wire form of wavepipe.TranOptions. Process-local
// fields (Observer, Faults, OnAccept) and service-managed durability fields
// (CheckpointPath, CheckpointEvery, ResumeFrom) have no wire form: the
// first cannot cross a process boundary, the second are owned by whichever
// process runs the simulation.
type TranOptions struct {
	TStop            float64            `json:"tstop,omitempty"`
	Scheme           string             `json:"scheme,omitempty"`
	Threads          int                `json:"threads,omitempty"`
	Method           string             `json:"method,omitempty"`
	RelTol           float64            `json:"reltol,omitempty"`
	AbsTol           float64            `json:"abstol,omitempty"`
	MaxStep          float64            `json:"maxStep,omitempty"`
	InitStep         float64            `json:"initStep,omitempty"`
	UIC              bool               `json:"uic,omitempty"`
	IC               map[string]float64 `json:"ic,omitempty"`
	NodeSet          map[string]float64 `json:"nodeset,omitempty"`
	Record           []string           `json:"record,omitempty"`
	DeltaRatio       float64            `json:"deltaRatio,omitempty"`
	AggressiveGrowth bool               `json:"aggressiveGrowth,omitempty"`
	LoadMode         string             `json:"loadMode,omitempty"`
	BypassTol        float64            `json:"bypassTol,omitempty"`
	DeviceBypass     bool               `json:"deviceBypass,omitempty"`
	CoreBudget       int                `json:"coreBudget,omitempty"`
	SnapshotEvery    int                `json:"snapshotEvery,omitempty"`
	Deadline         string             `json:"deadline,omitempty"`
	StallFactor      float64            `json:"stallFactor,omitempty"`
	// Time-parallel (Parareal) window configuration. Additive since
	// schemaVersion 1: absent fields mean no windowing, so documents from
	// older peers decode unchanged.
	Windows        int     `json:"windows,omitempty"`
	CoarseSteps    int     `json:"coarseSteps,omitempty"`
	CoarseTolScale float64 `json:"coarseTolScale,omitempty"`
	WindowGate     float64 `json:"windowGate,omitempty"`
	WindowStrict   bool    `json:"windowStrict,omitempty"`
	// Parasitic-reduction configuration. Additive since schemaVersion 1:
	// absent fields mean no reduction, so documents from older peers decode
	// unchanged.
	Reduce     bool     `json:"reduce,omitempty"`
	ReduceTol  float64  `json:"reduceTol,omitempty"`
	ReduceKeep []string `json:"reduceKeep,omitempty"`
}

// FromTranOptions converts facade options to their wire form.
func FromTranOptions(o wavepipe.TranOptions) TranOptions {
	w := TranOptions{
		TStop:            o.TStop,
		Threads:          o.Threads,
		RelTol:           o.RelTol,
		AbsTol:           o.AbsTol,
		MaxStep:          o.MaxStep,
		InitStep:         o.InitStep,
		UIC:              o.UIC,
		IC:               o.IC,
		NodeSet:          o.NodeSet,
		Record:           o.Record,
		DeltaRatio:       o.DeltaRatio,
		AggressiveGrowth: o.AggressiveGrowth,
		BypassTol:        o.BypassTol,
		DeviceBypass:     o.DeviceBypass,
		CoreBudget:       o.CoreBudget,
		SnapshotEvery:    o.SnapshotEvery,
		StallFactor:      o.StallFactor,
		Windows:          o.Windows,
		CoarseSteps:      o.CoarseOpts.Steps,
		CoarseTolScale:   o.CoarseOpts.TolScale,
		WindowGate:       o.CoarseOpts.Gate,
		WindowStrict:     o.CoarseOpts.Strict,
		Reduce:           o.Reduce,
		ReduceTol:        o.ReduceTol,
		ReduceKeep:       o.ReduceKeep,
	}
	if o.Scheme != wavepipe.Serial {
		w.Scheme = o.Scheme.String()
	}
	if o.Method != wavepipe.Gear2 {
		w.Method = o.Method.String()
	}
	if o.LoadMode != wavepipe.LoadAuto {
		w.LoadMode = wavepipe.LoadModeName(o.LoadMode)
	}
	if o.Deadline > 0 {
		w.Deadline = o.Deadline.String()
	}
	return w
}

// ToTranOptions converts wire options back to facade options, resolving the
// enumeration names and the deadline duration.
func (w TranOptions) ToTranOptions() (wavepipe.TranOptions, error) {
	o := wavepipe.TranOptions{
		TStop:            w.TStop,
		Threads:          w.Threads,
		RelTol:           w.RelTol,
		AbsTol:           w.AbsTol,
		MaxStep:          w.MaxStep,
		InitStep:         w.InitStep,
		UIC:              w.UIC,
		IC:               w.IC,
		NodeSet:          w.NodeSet,
		Record:           w.Record,
		DeltaRatio:       w.DeltaRatio,
		AggressiveGrowth: w.AggressiveGrowth,
		BypassTol:        w.BypassTol,
		DeviceBypass:     w.DeviceBypass,
		CoreBudget:       w.CoreBudget,
		SnapshotEvery:    w.SnapshotEvery,
		StallFactor:      w.StallFactor,
		Windows:          w.Windows,
		Reduce:           w.Reduce,
		ReduceTol:        w.ReduceTol,
		ReduceKeep:       w.ReduceKeep,
		CoarseOpts: wavepipe.CoarseOptions{
			Steps:    w.CoarseSteps,
			TolScale: w.CoarseTolScale,
			Gate:     w.WindowGate,
			Strict:   w.WindowStrict,
		},
	}
	var err error
	if o.Scheme, err = wavepipe.ParseScheme(w.Scheme); err != nil {
		return o, err
	}
	if o.Method, err = wavepipe.ParseMethod(w.Method); err != nil {
		return o, err
	}
	if o.LoadMode, err = wavepipe.ParseLoadMode(w.LoadMode); err != nil {
		return o, err
	}
	if w.Deadline != "" {
		d, perr := time.ParseDuration(w.Deadline)
		if perr != nil {
			return o, fmt.Errorf("wire: bad deadline %q: %w", w.Deadline, perr)
		}
		o.Deadline = d
	}
	return o, nil
}

// JobRequest is the POST /v1/jobs body: a deck (SPICE netlist source) plus
// optional analysis options, priority and label.
type JobRequest struct {
	SchemaVersion int          `json:"schemaVersion"`
	Deck          string       `json:"deck"`
	Options       *TranOptions `json:"options,omitempty"`
	Priority      int          `json:"priority,omitempty"`
	Label         string       `json:"label,omitempty"`
}

// JobStatus is the wire form of a job snapshot (returned by POST /v1/jobs
// and GET /v1/jobs/{id}).
type JobStatus struct {
	SchemaVersion int `json:"schemaVersion"`
	wavepipe.JobStatus
}

// Stats is the wire form of wavepipe.Stats, field for field.
type Stats struct {
	Points                 int   `json:"points"`
	Solves                 int   `json:"solves"`
	NRIters                int   `json:"nrIters"`
	LTERejects             int   `json:"lteRejects"`
	NRFailures             int   `json:"nrFailures"`
	Discarded              int   `json:"discarded"`
	OpIters                int   `json:"opIters"`
	Stages                 int   `json:"stages"`
	Recoveries             int   `json:"recoveries"`
	WorkerPanics           int   `json:"workerPanics"`
	DegradedStages         int   `json:"degradedStages"`
	BypassedFactorizations int   `json:"bypassedFactorizations"`
	Refactorizations       int   `json:"refactorizations"`
	FullFactorizations     int   `json:"fullFactorizations"`
	BypassedEvals          int64 `json:"bypassedEvals"`
	LinearStampHits        int64 `json:"linearStampHits"`
	CriticalNanos          int64 `json:"criticalNanos"`
	CoreBudget             int   `json:"coreBudget"`
	PipelineWorkers        int   `json:"pipelineWorkers"`
	IntraWorkers           int   `json:"intraWorkers"`
	PipelineSerialized     bool  `json:"pipelineSerialized"`
	WindowsLaunched        int64 `json:"windowsLaunched"`
	PararealIters          int64 `json:"pararealIters"`
	WindowRedos            int64 `json:"windowRedos"`
	// Parasitic-reduction counters. Additive since schemaVersion 1
	// (omitempty: absent means the run was not reduced).
	ReducedNodes   int64 `json:"reducedNodes,omitempty"`
	ReducedDevices int64 `json:"reducedDevices,omitempty"`
}

// FromStats converts engine statistics to their wire form.
func FromStats(s wavepipe.Stats) Stats {
	return Stats{
		Points:                 s.Points,
		Solves:                 s.Solves,
		NRIters:                s.NRIters,
		LTERejects:             s.LTERejects,
		NRFailures:             s.NRFailures,
		Discarded:              s.Discarded,
		OpIters:                s.OpIters,
		Stages:                 s.Stages,
		Recoveries:             s.Recoveries,
		WorkerPanics:           s.WorkerPanics,
		DegradedStages:         s.DegradedStages,
		BypassedFactorizations: s.BypassedFactorizations,
		Refactorizations:       s.Refactorizations,
		FullFactorizations:     s.FullFactorizations,
		BypassedEvals:          s.BypassedEvals,
		LinearStampHits:        s.LinearStampHits,
		CriticalNanos:          s.CriticalNanos,
		CoreBudget:             s.CoreBudget,
		PipelineWorkers:        s.PipelineWorkers,
		IntraWorkers:           s.IntraWorkers,
		PipelineSerialized:     s.PipelineSerialized,
		WindowsLaunched:        s.WindowsLaunched,
		PararealIters:          s.PararealIters,
		WindowRedos:            s.WindowRedos,
		ReducedNodes:           s.ReducedNodes,
		ReducedDevices:         s.ReducedDevices,
	}
}

// ToStats converts wire statistics back to the facade type.
func (w Stats) ToStats() wavepipe.Stats {
	return wavepipe.Stats{
		Points:                 w.Points,
		Solves:                 w.Solves,
		NRIters:                w.NRIters,
		LTERejects:             w.LTERejects,
		NRFailures:             w.NRFailures,
		Discarded:              w.Discarded,
		OpIters:                w.OpIters,
		Stages:                 w.Stages,
		Recoveries:             w.Recoveries,
		WorkerPanics:           w.WorkerPanics,
		DegradedStages:         w.DegradedStages,
		BypassedFactorizations: w.BypassedFactorizations,
		Refactorizations:       w.Refactorizations,
		FullFactorizations:     w.FullFactorizations,
		BypassedEvals:          w.BypassedEvals,
		LinearStampHits:        w.LinearStampHits,
		CriticalNanos:          w.CriticalNanos,
		CoreBudget:             w.CoreBudget,
		PipelineWorkers:        w.PipelineWorkers,
		IntraWorkers:           w.IntraWorkers,
		PipelineSerialized:     w.PipelineSerialized,
		WindowsLaunched:        w.WindowsLaunched,
		PararealIters:          w.PararealIters,
		WindowRedos:            w.WindowRedos,
		ReducedNodes:           w.ReducedNodes,
		ReducedDevices:         w.ReducedDevices,
	}
}

// Result is the wire form of a finished run: the recorded waveforms, the
// run statistics and the final solution vector. The in-process recovery log
// does not travel — it is diagnostic detail for local callers.
type Result struct {
	SchemaVersion int         `json:"schemaVersion"`
	Signals       []string    `json:"signals"`
	Index         []int       `json:"index"`
	Times         []float64   `json:"times"`
	Data          [][]float64 `json:"data"`
	Stats         Stats       `json:"stats"`
	FinalX        []float64   `json:"finalX,omitempty"`
	// Err carries the typed simulation error message of a failed run whose
	// partial result was still worth returning.
	Err string `json:"error,omitempty"`
}

// FromResult converts a run result to its wire form. A nil result maps to
// nil.
func FromResult(r *wavepipe.Result) *Result {
	if r == nil {
		return nil
	}
	out := &Result{
		SchemaVersion: SchemaVersion,
		Stats:         FromStats(r.Stats),
		FinalX:        r.FinalX,
	}
	if r.W != nil {
		out.Signals = r.W.Names
		out.Index = r.W.Index
		out.Times = r.W.Times
		out.Data = r.W.Data
	}
	return out
}

// ToResult converts a wire result back to the facade type, validating the
// waveform shape invariants (matching lengths, row width, ascending times).
func (w *Result) ToResult() (*wavepipe.Result, error) {
	if w == nil {
		return nil, nil
	}
	if len(w.Times) != len(w.Data) {
		return nil, fmt.Errorf("wire: %d times vs %d rows", len(w.Times), len(w.Data))
	}
	for k, row := range w.Data {
		if len(row) != len(w.Signals) {
			return nil, fmt.Errorf("wire: row %d has %d values, want %d", k, len(row), len(w.Signals))
		}
		if k > 0 && w.Times[k] <= w.Times[k-1] {
			return nil, fmt.Errorf("wire: times not ascending at sample %d", k)
		}
	}
	index := w.Index
	if index == nil {
		index = make([]int, len(w.Signals))
		for i := range index {
			index[i] = i
		}
	}
	if len(index) != len(w.Signals) {
		return nil, fmt.Errorf("wire: %d indices vs %d signals", len(index), len(w.Signals))
	}
	return &wavepipe.Result{
		W: &wavepipe.Set{
			Names: w.Signals,
			Index: index,
			Times: w.Times,
			Data:  w.Data,
		},
		Stats:  w.Stats.ToStats(),
		FinalX: w.FinalX,
	}, nil
}

// Error is the uniform error body every wavesimd endpoint returns on
// failure.
type Error struct {
	SchemaVersion int    `json:"schemaVersion"`
	Error         string `json:"error"`
}

// StreamHeader is the first NDJSON line of a GET /v1/jobs/{id}/stream
// response; the row lines that follow are wavepipe.StreamPoint documents
// whose values align with Signals.
type StreamHeader struct {
	SchemaVersion int      `json:"schemaVersion"`
	Signals       []string `json:"signals"`
}

// DecodeStreamHeader parses and version-checks a stream's header line.
func DecodeStreamHeader(line []byte) (*StreamHeader, error) {
	var h StreamHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("wire: stream header: %w", err)
	}
	if err := checkVersion(h.SchemaVersion); err != nil {
		return nil, err
	}
	return &h, nil
}

// DecodeError extracts the error message from an error body; it returns ""
// when the body is not a wire error document.
func DecodeError(body []byte) string {
	var e Error
	if json.Unmarshal(body, &e) != nil {
		return ""
	}
	return e.Error
}

// Encode writes v as a single JSON document.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// decodeStrict decodes exactly one JSON document, rejecting unknown fields.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}

// checkVersion rejects any schema version other than the one this build
// speaks.
func checkVersion(v int) error {
	if v != SchemaVersion {
		return fmt.Errorf("wire: schemaVersion %d not supported (want %d)", v, SchemaVersion)
	}
	return nil
}

// DecodeJobRequest reads and validates a POST /v1/jobs body.
func DecodeJobRequest(r io.Reader) (*JobRequest, error) {
	var q JobRequest
	if err := decodeStrict(r, &q); err != nil {
		return nil, err
	}
	if err := checkVersion(q.SchemaVersion); err != nil {
		return nil, err
	}
	return &q, nil
}

// DecodeJobStatus reads and validates a job-status document.
func DecodeJobStatus(r io.Reader) (*JobStatus, error) {
	var q JobStatus
	if err := decodeStrict(r, &q); err != nil {
		return nil, err
	}
	if err := checkVersion(q.SchemaVersion); err != nil {
		return nil, err
	}
	return &q, nil
}

// DecodeResult reads and validates a result document.
func DecodeResult(r io.Reader) (*Result, error) {
	var q Result
	if err := decodeStrict(r, &q); err != nil {
		return nil, err
	}
	if err := checkVersion(q.SchemaVersion); err != nil {
		return nil, err
	}
	return &q, nil
}
