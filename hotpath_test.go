package wavepipe

// Hot-path acceleration acceptance tests: factorization bypass accuracy on
// the evaluation circuits, bit-identity of the default (bypass-off) paths,
// and the colored device-load mode through the public facade.

import (
	"testing"

	"wavepipe/internal/circuits"
)

func suiteSystem(t *testing.T, name string) (*System, TranOptions) {
	t.Helper()
	for _, bb := range circuits.Suite() {
		if bb.Name != name {
			continue
		}
		sys, err := bb.Make().Build()
		if err != nil {
			t.Fatal(err)
		}
		return sys, TranOptions{TStop: bb.TStop, Record: []string{bb.Probe}}
	}
	t.Fatalf("no suite circuit %q", name)
	return nil, TranOptions{}
}

// TestBypassMatchesReferenceOnSuite: on the two bypass-relevant evaluation
// circuits (a digital ring oscillator and the nonlinear bridge rectifier), a
// run with factorization bypass enabled must stay within the engine's LTE
// accuracy of the exact run, while actually skipping factorizations.
func TestBypassMatchesReferenceOnSuite(t *testing.T) {
	for _, name := range []string{"ring9", "rect1k"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, opts := suiteSystem(t, name)
			ref, err := RunTransient(sys, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Stats.BypassedFactorizations != 0 {
				t.Fatalf("reference run bypassed %d factorizations with BypassTol=0",
					ref.Stats.BypassedFactorizations)
			}
			bp := opts
			bp.BypassTol = 1e-3
			res, err := RunTransient(sys, bp)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.BypassedFactorizations == 0 {
				t.Fatal("BypassTol=1e-3 never bypassed a factorization")
			}
			dev, err := Compare(res.W, ref.W, opts.Record[0])
			if err != nil {
				t.Fatal(err)
			}
			if dev.RelMax() > 0.02 {
				t.Fatalf("bypassed run deviates by %g of signal range (%d bypasses)",
					dev.RelMax(), res.Stats.BypassedFactorizations)
			}
		})
	}
}

// TestZeroBypassTolBitIdentical: with the default options (bypass disabled)
// an explicit BypassTol of zero must change nothing — every scheme produces
// a bit-identical waveform, confirming the bypass plumbing is inert when
// off.
func TestZeroBypassTolBitIdentical(t *testing.T) {
	for _, s := range []Scheme{Serial, Backward, Forward, Combined, FineGrained} {
		def, err := RunTransient(lowpass(t), TranOptions{TStop: 3e-3, Scheme: s, Threads: 4})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		zero, err := RunTransient(lowpass(t), TranOptions{TStop: 3e-3, Scheme: s, Threads: 4, BypassTol: 0})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if def.Stats.BypassedFactorizations != 0 || zero.Stats.BypassedFactorizations != 0 {
			t.Fatalf("%v: bypass counted with BypassTol=0", s)
		}
		if len(def.W.Times) != len(zero.W.Times) {
			t.Fatalf("%v: point counts differ: %d vs %d", s, len(def.W.Times), len(zero.W.Times))
		}
		for k := range def.W.Times {
			if def.W.Times[k] != zero.W.Times[k] {
				t.Fatalf("%v: time %d differs: %g vs %g", s, k, def.W.Times[k], zero.W.Times[k])
			}
			for j := range def.W.Data[k] {
				if def.W.Data[k][j] != zero.W.Data[k][j] {
					t.Fatalf("%v: sample (%d,%d) differs: %g vs %g",
						s, k, j, def.W.Data[k][j], zero.W.Data[k][j])
				}
			}
		}
	}
}

// TestLoadModesThroughFacade: every load mode must yield the same waveform
// through the public API (colored assembly reassociates row sums, so the
// comparison allows the engine's LTE-scale deviation, not bit-identity).
func TestLoadModesThroughFacade(t *testing.T) {
	ref, err := RunTransient(lowpass(t), TranOptions{TStop: 3e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LoadMode{LoadAuto, LoadSharded, LoadColored} {
		res, err := RunTransient(lowpass(t), TranOptions{
			TStop: 3e-3, Scheme: FineGrained, Threads: 4, LoadMode: mode,
		})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		dev, err := Compare(res.W, ref.W, "out")
		if err != nil {
			t.Fatal(err)
		}
		if dev.RelMax() > 0.02 {
			t.Fatalf("mode %d deviates by %g", mode, dev.RelMax())
		}
	}
}
