package wavepipe_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wavepipe"
	"wavepipe/internal/circuits"
)

var updateTraceGolden = flag.Bool("update-trace-golden", false,
	"regenerate testdata/trace_golden.jsonl and its stats sidecar from a fresh run")

const (
	goldenTracePath = "testdata/trace_golden.jsonl"
	goldenStatsPath = "testdata/trace_golden_stats.json"
)

// goldenStats is the sidecar: the Stats counters of the run that produced
// the golden trace, as the replay must reconstruct them.
type goldenStats struct {
	Points     int `json:"points"`
	Solves     int `json:"solves"`
	NRIters    int `json:"nr_iters"`
	LTERejects int `json:"lte_rejects"`
	Discarded  int `json:"discarded"`
	Recoveries int `json:"recoveries"`
}

// TestGoldenTraceReplays pins the JSONL wire format: a trace recorded by an
// earlier build must still parse and replay to the Stats counters of the run
// that produced it. A wire-format change that breaks old logs fails here
// (regenerate deliberately with -update-trace-golden).
func TestGoldenTraceReplays(t *testing.T) {
	if *updateTraceGolden {
		regenerateGoldenTrace(t)
	}
	f, err := os.Open(goldenTracePath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenTraceReplays -update-trace-golden .` to create it)", err)
	}
	defer f.Close()
	events, snaps, err := wavepipe.ReadTraceJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || len(snaps) == 0 {
		t.Fatalf("golden trace degenerate: %d events, %d snapshots", len(events), len(snaps))
	}

	raw, err := os.ReadFile(goldenStatsPath)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenStats
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	rc := wavepipe.ReplayTrace(events)
	got := goldenStats{
		Points: rc.Points, Solves: rc.Solves, NRIters: rc.NRIters,
		LTERejects: rc.LTERejects, Discarded: rc.Discarded, Recoveries: rc.Recoveries,
	}
	if got != want {
		t.Fatalf("golden trace replay mismatch:\n got %+v\nwant %+v", got, want)
	}

	// The final snapshot's cumulative counters must agree with the replay up
	// to snapshot cadence (snapshots sample on accepts, so they can only lag).
	last := snaps[len(snaps)-1]
	if last.Points > int64(rc.Points) || last.Solves > int64(rc.Solves) {
		t.Fatalf("final snapshot ahead of the event stream: %+v vs %+v", last, rc)
	}
}

func regenerateGoldenTrace(t *testing.T) {
	t.Helper()
	var bench *circuits.Benchmark
	for _, b := range circuits.Suite() {
		if b.Name == "rlctree8" {
			bb := b
			bench = &bb
		}
	}
	if bench == nil {
		t.Fatal("no rlctree8 benchmark")
	}
	sys, err := bench.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := wavepipe.NewTraceRecorder(0)
	// A short window keeps the checked-in file small while still exercising
	// every record type (solve phases, accepts, rejects, snapshots).
	res, err := wavepipe.RunTransient(sys, wavepipe.TranOptions{
		TStop: bench.TStop / 50, Record: []string{bench.Probe},
		Observer: rec, SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := wavepipe.WriteTraceJSONL(f, rec.Events(), rec.Snapshots()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := json.MarshalIndent(goldenStats{
		Points: res.Stats.Points, Solves: res.Stats.Solves, NRIters: res.Stats.NRIters,
		LTERejects: res.Stats.LTERejects, Discarded: res.Stats.Discarded,
		Recoveries: res.Stats.Recoveries,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenStatsPath, append(stats, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s (%d events, %d snapshots)", goldenTracePath, rec.Len(), len(rec.Snapshots()))
}
