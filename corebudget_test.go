package wavepipe

// Two-level scheduler acceptance tests: the core-budget runs must be
// bit-identical whether the gangs actually run concurrently (enough
// GOMAXPROCS) or degrade to the in-place sequential sweep (the determinism
// contract that makes CoreBudget safe to enable anywhere), must stay within
// LTE accuracy of the unmanaged engine, must split the budget as documented,
// and must not leak gang goroutines.

import (
	"runtime"
	"testing"
	"time"

	"wavepipe/internal/circuits"
	"wavepipe/internal/sched"
)

// budgetRun executes one run with the given core budget under the given
// GOMAXPROCS, restoring the previous setting before returning.
func budgetRun(t *testing.T, sys *System, opts TranOptions, budget, procs int) *Result {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	opts.CoreBudget = budget
	res, err := RunTransient(sys, opts)
	if err != nil {
		t.Fatalf("budget=%d procs=%d: %v", budget, procs, err)
	}
	return res
}

// forcedRun executes one run with the gang kernels forced on at GOMAXPROCS=1:
// the concurrent code paths run bit-for-bit, round-robined cooperatively on
// one CPU. Raising GOMAXPROCS past the hardware thread count instead would
// push every barrier crossing into OS time-slicing and make the big suite
// circuits take minutes each (see sched.ForceGang).
func forcedRun(t *testing.T, sys *System, opts TranOptions, budget int) *Result {
	t.Helper()
	sched.ForceGang.Store(true)
	defer sched.ForceGang.Store(false)
	return budgetRun(t, sys, opts, budget, 1)
}

// sameWaveform demands bitwise equality of two result waveforms.
func sameWaveform(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if len(got.W.Times) != len(want.W.Times) {
		t.Fatalf("%s: point counts differ: %d vs %d", tag, len(got.W.Times), len(want.W.Times))
	}
	for k := range want.W.Times {
		if got.W.Times[k] != want.W.Times[k] {
			t.Fatalf("%s: time %d differs: %g vs %g", tag, k, got.W.Times[k], want.W.Times[k])
		}
		for j := range want.W.Data[k] {
			if got.W.Data[k][j] != want.W.Data[k][j] {
				t.Fatalf("%s: sample (%d,%d) differs: %g vs %g",
					tag, k, j, got.W.Data[k][j], want.W.Data[k][j])
			}
		}
	}
}

// TestCoreBudgetBitIdenticalSuite runs every evaluation circuit twice with
// the same core budget: once with the gang kernels forced through their
// concurrent code paths, once with every kernel degraded to its sequential
// sweep. The waveforms must match bit for bit — the parallel level-scheduled
// LU and the pooled colored load are exact reimplementations, not
// approximations.
func TestCoreBudgetBitIdenticalSuite(t *testing.T) {
	for _, b := range circuits.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}}
			par := forcedRun(t, sys, opts, 4)
			deg := budgetRun(t, sys, opts, 4, 1)
			sameWaveform(t, "gang vs degraded", par, deg)
			if par.Stats.CoreBudget != 4 {
				t.Fatalf("Stats.CoreBudget = %d, want 4", par.Stats.CoreBudget)
			}
		})
	}
}

// TestCoreBudgetCombinedBitIdentical covers the same determinism contract
// through the combined WavePipe scheme, where the budget is split between
// pipeline workers and per-solver gangs.
func TestCoreBudgetCombinedBitIdentical(t *testing.T) {
	b, sysOpts := func() (circuits.Benchmark, TranOptions) {
		for _, bb := range circuits.Suite() {
			if bb.Name == "grid16" {
				return bb, TranOptions{TStop: bb.TStop / 5, Record: []string{bb.Probe}}
			}
		}
		t.Fatal("no grid16 in suite")
		return circuits.Benchmark{}, TranOptions{}
	}()
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := sysOpts
	opts.Scheme = Combined
	opts.Threads = 4
	par := forcedRun(t, sys, opts, 8)
	deg := budgetRun(t, sys, opts, 8, 1)
	sameWaveform(t, "combined gang vs degraded", par, deg)
	if par.Stats.CoreBudget != 8 || par.Stats.PipelineWorkers != 4 {
		t.Fatalf("budget split not surfaced: %+v", par.Stats)
	}
	if par.Stats.IntraWorkers != 2 {
		t.Fatalf("IntraWorkers = %d, want 2 (budget 8 / 4 pipeline workers)", par.Stats.IntraWorkers)
	}
	if !deg.Stats.PipelineSerialized {
		t.Fatal("1-core run did not report pipeline serialization")
	}

	// The per-phase serialization check (satellite of the old Engine.seq
	// bug): with enough GOMAXPROCS and budget the pipeline must NOT report
	// serialization. Use a circuit below the intra-point profitability
	// threshold so no gangs attach — pipeline workers alone don't spin, so
	// GOMAXPROCS above the hardware thread count is harmless here.
	small := lowpass(t)
	wide := budgetRun(t, small, TranOptions{TStop: 3e-3, Scheme: Combined, Threads: 4}, 4, 4)
	if wide.Stats.PipelineSerialized {
		t.Fatal("4-proc budget-4 run reported pipeline serialization")
	}
	narrow := budgetRun(t, small, TranOptions{TStop: 3e-3, Scheme: Combined, Threads: 4}, 2, 4)
	if !narrow.Stats.PipelineSerialized {
		t.Fatal("budget 2 under 4 pipeline workers must serialize the pipeline")
	}
}

// TestCoreBudgetMatchesReference compares a budgeted run against the
// unmanaged engine. The colored load reassociates row sums, so the check is
// the engine's LTE-scale tolerance, not bit-identity.
func TestCoreBudgetMatchesReference(t *testing.T) {
	for _, name := range []string{"grid16", "ring9"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, opts := suiteSystem(t, name)
			ref, err := RunTransient(sys, opts)
			if err != nil {
				t.Fatal(err)
			}
			res := budgetRun(t, sys, opts, 4, 4)
			dev, err := Compare(res.W, ref.W, opts.Record[0])
			if err != nil {
				t.Fatal(err)
			}
			if dev.RelMax() > 0.02 {
				t.Fatalf("budgeted run deviates by %g of signal range", dev.RelMax())
			}
		})
	}
}

// TestCoreBudgetProfitabilityGate: a circuit below the intra-point
// profitability threshold must keep its whole budget unused (IntraWorkers
// stays 1) while a mesh-sized circuit splits it.
func TestCoreBudgetProfitabilityGate(t *testing.T) {
	small := budgetRun(t, lowpass(t), TranOptions{TStop: 3e-3}, 8, 4)
	if small.Stats.IntraWorkers != 1 {
		t.Fatalf("small circuit got an intra gang: IntraWorkers = %d", small.Stats.IntraWorkers)
	}
	sys, opts := suiteSystem(t, "grid16")
	opts.TStop /= 5
	big := forcedRun(t, sys, opts, 8)
	if big.Stats.IntraWorkers != 8 {
		t.Fatalf("serial engine should give the whole budget to the gang: IntraWorkers = %d", big.Stats.IntraWorkers)
	}
}

// TestCoreBudgetNoGoroutineLeak: the gangs attached by budgeted runs are
// closed with their runs; repeated runs must not accumulate goroutines.
func TestCoreBudgetNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	sys, opts := suiteSystem(t, "grid16")
	opts.TStop /= 10
	for i := 0; i < 3; i++ {
		forcedRun(t, sys, opts, 4)
		wp := opts
		wp.Scheme = Combined
		wp.Threads = 4
		forcedRun(t, sys, wp, 8)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak: %d before, %d after budgeted runs", before, now)
	}
}
