package wavepipe

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestRunACThroughFacade(t *testing.T) {
	c := NewCircuit("lp")
	in := c.Node("in")
	out := c.Node("out")
	AddVSourceAC(c, "V1", in, Ground, DC(0), 1, 0)
	AddResistor(c, "R1", in, out, 1e3)
	AddCapacitor(c, "C1", out, Ground, 1e-9)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAC(sys, ACOptions{FStart: 1e3, FStop: 1e7, Record: []string{"out"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 1 || res.Names[0] != "out" {
		t.Fatalf("names = %v", res.Names)
	}
	sig, err := res.Signal("out")
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range res.Freqs {
		want := 1 / complex(1, 2*math.Pi*f*1e3*1e-9)
		if cmplx.Abs(sig[k]-want) > 1e-9 {
			t.Fatalf("f=%g: %v vs %v", f, sig[k], want)
		}
	}
	if _, err := RunAC(sys, ACOptions{Sweep: "weird", FStart: 1, FStop: 2}); err == nil {
		t.Fatal("bad sweep must fail")
	}
	if _, err := RunAC(sys, ACOptions{FStart: 1, FStop: 2, Record: []string{"zzz"}}); err == nil {
		t.Fatal("bad record must fail")
	}
}

func TestRunDCSweepThroughFacade(t *testing.T) {
	c := NewCircuit("vtc")
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	AddVSource(c, "VDD", vdd, Ground, DC(1.8))
	vin := AddVSourceAC(c, "VIN", in, Ground, DC(0), 0, 0)
	AddResistor(c, "RL", vdd, out, 20e3)
	AddMOSFET(c, "M1", out, in, Ground, Ground, DefaultMOSModel(NMOS), 4e-6, 1e-6)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	w, err := RunDCSweep(sys, vin, 0, 1.8, 0.2, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := w.At("out", 0)
	lo, _ := w.At("out", 1.8)
	if hi < 1.7 || lo > 0.3 {
		t.Fatalf("VTC rails: %g, %g", hi, lo)
	}
	if _, err := RunDCSweep(sys, vin, 0, 1, 0.1, []string{"zzz"}); err == nil {
		t.Fatal("bad record must fail")
	}
}

func TestDeckDrivenACAndDC(t *testing.T) {
	deck := `deck analyses
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 159.155n
.ac dec 5 10 100k
.dc V1 0 2 0.5
.end
`
	d, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDeckAC(d, ACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// fc = 1/(2πRC) ≈ 1 kHz with that capacitor.
	db, err := res.MagDB("out")
	if err != nil {
		t.Fatal(err)
	}
	at1k := -100.0
	for k, f := range res.Freqs {
		if math.Abs(f-1000) < 1 {
			at1k = db[k]
		}
	}
	if math.Abs(at1k-(-3.01)) > 0.05 {
		t.Fatalf("deck AC at fc: %g dB", at1k)
	}

	sweep, err := RunDeckDC(d, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Len() != 5 {
		t.Fatalf("sweep points = %d", sweep.Len())
	}
	v, _ := sweep.At("out", 2)
	if math.Abs(v-2) > 1e-9 {
		t.Fatalf("DC sweep endpoint = %g", v)
	}

	// Error paths.
	d2, _ := ParseDeck("no cards\nR1 a 0 1k\nV1 a 0 1\n")
	if _, err := RunDeckAC(d2, ACOptions{}); err == nil {
		t.Fatal("missing .AC must fail")
	}
	if _, err := RunDeckDC(d2, nil); err == nil {
		t.Fatal("missing .DC must fail")
	}
}

// A BJT differential pair built through the facade: the differential gain
// from AC analysis must be close to gm·Rc/2 per side.
func TestBJTDiffPairAC(t *testing.T) {
	c := NewCircuit("diffpair")
	vcc := c.Node("vcc")
	vee := c.Node("vee")
	inp := c.Node("inp")
	outp := c.Node("outp")
	outn := c.Node("outn")
	tail := c.Node("tail")
	AddVSource(c, "VCC", vcc, Ground, DC(12))
	AddVSource(c, "VEE", vee, Ground, DC(-12))
	AddVSourceAC(c, "VINP", inp, Ground, DC(0), 1, 0)
	AddResistor(c, "RC1", vcc, outp, 10e3)
	AddResistor(c, "RC2", vcc, outn, 10e3)
	AddBJT(c, "Q1", outp, inp, tail, DefaultBJTModel(NPN), 1)
	AddBJT(c, "Q2", outn, Ground, tail, DefaultBJTModel(NPN), 1)
	AddResistor(c, "REE", tail, vee, 11.3e3) // ≈1 mA tail
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAC(sys, ACOptions{Sweep: "lin", Points: 1, FStart: 1e3, FStop: 1e3, Record: []string{"outp", "outn"}})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := res.Signal("outp")
	sn, _ := res.Signal("outn")
	// Tail ≈ 1 mA → each side 0.5 mA → gm ≈ 19.3 mS; single-ended gain per
	// output ≈ gm·Rc/2 ≈ 97, antiphase outputs.
	gm := 0.5e-3 / 0.025852
	want := gm * 10e3 / 2
	gainP := cmplx.Abs(sp[0])
	if math.Abs(gainP-want) > 0.15*want {
		t.Fatalf("|A(outp)| = %g, want ≈%g", gainP, want)
	}
	// Differential symmetry: outputs in antiphase with equal magnitude.
	if cmplx.Abs(sp[0]+sn[0]) > 0.05*gainP {
		t.Fatalf("outputs not antiphase: %v vs %v", sp[0], sn[0])
	}
}

func TestRunOP(t *testing.T) {
	c := NewCircuit("op")
	in := c.Node("in")
	mid := c.Node("mid")
	AddVSource(c, "V1", in, Ground, DC(10))
	AddResistor(c, "R1", in, mid, 1e3)
	AddResistor(c, "R2", mid, Ground, 4e3)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	op, err := RunOP(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op["mid"]-8) > 1e-9 || math.Abs(op["in"]-10) > 1e-9 {
		t.Fatalf("op = %v", op)
	}
	// Unsolvable circuit surfaces the error.
	c2 := NewCircuit("bad")
	a := c2.Node("a")
	AddVSource(c2, "V1", a, Ground, DC(1))
	AddVSource(c2, "V2", a, Ground, DC(2))
	sys2, err := c2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOP(sys2); err == nil {
		t.Fatal("conflicting sources must fail")
	}
}

func TestRunSens(t *testing.T) {
	c := NewCircuit("sens")
	in := c.Node("in")
	mid := c.Node("mid")
	AddVSource(c, "V1", in, Ground, DC(10))
	AddResistor(c, "R1", in, mid, 1e3)
	AddResistor(c, "R2", mid, Ground, 1e3)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	sens, err := RunSens(sys, "mid")
	if err != nil {
		t.Fatal(err)
	}
	// v(mid) = V·R2/(R1+R2): dV/dV1 = 0.5; normalized dV/d(lnR2) = 2.5,
	// dV/d(lnR1) = −2.5.
	for _, s := range sens {
		switch s.Device + "." + s.Param {
		case "V1.dc":
			if math.Abs(s.DVDp-0.5) > 1e-9 {
				t.Fatalf("V1 sensitivity = %g", s.DVDp)
			}
		case "R1.r":
			if math.Abs(s.Normalized-(-2.5)) > 1e-6 {
				t.Fatalf("R1 normalized = %g", s.Normalized)
			}
		case "R2.r":
			if math.Abs(s.Normalized-2.5) > 1e-6 {
				t.Fatalf("R2 normalized = %g", s.Normalized)
			}
		}
	}
	if _, err := RunSens(sys, "zzz"); err == nil {
		t.Fatal("unknown node must fail")
	}
}

// .NODESET seeds the operating point: the cross-coupled latch resolves to
// the state the seed suggests, while the unseeded OP finds the metastable
// midpoint.
func TestNodeSetSteersLatchOP(t *testing.T) {
	deck := `latch with nodeset
.model nch nmos(vto=0.5 kp=120u lambda=0.06)
.model pch pmos(vto=-0.55 kp=50u lambda=0.06)
VDD vdd 0 1.8
MPA q qb vdd vdd pch w=2u l=0.5u
MNA q qb 0 0 nch w=1u l=0.5u
MPB qb q vdd vdd pch w=2u l=0.5u
MNB qb q 0 0 nch w=1u l=0.5u
CQ q 0 5f
CQB qb 0 5f
.nodeset v(q)=1.8 v(qb)=0
.tran 0.1n 5n
.end
`
	d, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	if d.NodeSets["q"] != 1.8 || d.NodeSets["qb"] != 0 {
		t.Fatalf("nodesets = %v", d.NodeSets)
	}
	res, err := RunDeck(d, TranOptions{Record: []string{"q", "qb"}})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := res.W.At("q", 0)
	qb, _ := res.W.At("qb", 0)
	if q < 1.5 || qb > 0.3 {
		t.Fatalf("seeded latch OP: q=%g qb=%g, want resolved high/low", q, qb)
	}
	// Unknown node in an explicit NodeSet errors.
	sys, _ := d.Circuit.Build()
	if _, err := RunTransient(sys, TranOptions{TStop: 1e-9, NodeSet: map[string]float64{"zz": 1}}); err == nil {
		t.Fatal("bad nodeset must fail")
	}
}
