package wavepipe

// Time-parallel (Parareal) window acceptance tests: windowed runs must stay
// within the LTE accuracy of the serial engine across the whole evaluation
// suite, must be deterministic, must degrade to the sequential window chain
// when the coarse seeds fail to contract, must honor cancellation without
// leaking coordinator or worker goroutines, and must emit a trace stream
// that replays 1:1 to the run's Stats counters.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"wavepipe/internal/circuits"
	"wavepipe/internal/transient"
)

// windowedRun executes one windowed transient and fails the test on error.
func windowedRun(t *testing.T, sys *System, opts TranOptions) *Result {
	t.Helper()
	res, err := RunTransient(sys, opts)
	if err != nil {
		t.Fatalf("windowed run: %v", err)
	}
	return res
}

// TestWindowsMatchSerialSuite runs every evaluation circuit serially and
// with four Parareal windows under the default convergence gate: the
// windowed waveform must stay within 5% of the serial signal range — the
// bar the durability suite holds resumed runs to, and a window chain is a
// chain of resumes — and the window accounting must be coherent. The
// coordinator only cuts time where it can do so accurately (device
// breakpoints, or anywhere on smooth circuits), so the effective window
// count may be smaller than requested, down to a plain serial run.
func TestWindowsMatchSerialSuite(t *testing.T) {
	for _, b := range circuits.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}}
			ref, err := RunTransient(sys, opts)
			if err != nil {
				t.Fatal(err)
			}
			wopts := opts
			wopts.Windows = 4
			res := windowedRun(t, sys, wopts)
			dev, err := Compare(res.W, ref.W, b.Probe)
			if err != nil {
				t.Fatal(err)
			}
			if dev.RelMax() > 0.05 {
				t.Fatalf("windowed run deviates by %g of signal range", dev.RelMax())
			}
			W := res.Stats.WindowsLaunched
			if W < 0 || W > 4 {
				t.Fatalf("WindowsLaunched = %d, want 0..4", W)
			}
			if W > 0 && res.Stats.PararealIters < W {
				t.Fatalf("PararealIters = %d, want >= one fine solve per window (%d)",
					res.Stats.PararealIters, W)
			}
			if res.W.Times[len(res.W.Times)-1] != ref.W.Times[len(ref.W.Times)-1] {
				t.Fatalf("windowed run ends at %g, serial at %g",
					res.W.Times[len(res.W.Times)-1], ref.W.Times[len(ref.W.Times)-1])
			}
		})
	}
}

// TestWindowsStrictBitIdentical iterates to the strict gate: a strict
// windowed run refines every window from its exact predecessor state, and
// window boundaries sit on device breakpoints where the serial engine
// restarts its integrator anyway — so on breakpoint-structured circuits the
// sequential window chain must reproduce the serial run bit for bit, at any
// window count.
func TestWindowsStrictBitIdentical(t *testing.T) {
	for _, name := range []string{"rlctree8", "grid16", "ladder400", "inv50"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, ok := findSuite(name)
			if !ok {
				t.Fatalf("no %s benchmark", name)
			}
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := RunTransient(sys, TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}})
			if err != nil {
				t.Fatal(err)
			}
			for _, W := range []int{2, 3, 4, 8} {
				opts := TranOptions{
					TStop: b.TStop / 5, Record: []string{b.Probe},
					Windows: W, CoarseOpts: CoarseOptions{Strict: true},
				}
				res := windowedRun(t, sys, opts)
				sameWaveform(t, fmt.Sprintf("strict W=%d", W), res, ref)
				if res.Stats.WindowRedos != 0 {
					t.Fatalf("W=%d: strict run recorded %d redos; strict windows never speculate",
						W, res.Stats.WindowRedos)
				}
			}
		})
	}
}

// TestWindowsSerialFallback forces the Parareal iteration to fail its
// contraction gate (an absurdly tight gate under an extra-loose coarse
// propagator) and demands the documented degradation: redo counters rise,
// the run notes a serial fallback in its recovery log, and the waveform is
// still the serial answer — the fallback chain refines every window from
// its exact predecessor, trading speedup for correctness, never accuracy.
func TestWindowsSerialFallback(t *testing.T) {
	b, ok := findSuite("ladder400")
	if !ok {
		t.Fatal("no ladder400 benchmark")
	}
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := TranOptions{
		TStop: b.TStop / 5, Record: []string{b.Probe},
		Windows:    6,
		CoarseOpts: CoarseOptions{Gate: 1e-9, TolScale: 64, Steps: 4},
	}
	res := windowedRun(t, sys, opts)
	if res.Stats.WindowRedos == 0 {
		t.Fatalf("gate 1e-9 accepted every coarse seed: %+v", res.Stats)
	}
	if res.Recovery.Count(transient.RecoverySerialFallback) == 0 {
		t.Fatalf("no serial-fallback recovery noted: %+v", res.Recovery.Events())
	}
	ref, err := RunTransient(sys, TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Compare(res.W, ref.W, b.Probe)
	if err != nil {
		t.Fatal(err)
	}
	if dev.RelMax() > 0.02 {
		t.Fatalf("fallback run deviates by %g of signal range", dev.RelMax())
	}
}

// TestWindowsCancellation cancels a windowed run mid-flight and demands a
// prompt ErrCanceled with every coordinator, coarse and fine goroutine gone
// — the seed and convergence channels are published exactly once on every
// exit path, so cancellation must never strand a window worker.
func TestWindowsCancellation(t *testing.T) {
	b, ok := findSuite("grid16")
	if !ok {
		t.Fatal("no grid16 benchmark")
	}
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	opts := TranOptions{TStop: b.TStop, Record: []string{b.Probe}, Windows: 4}
	if _, err := RunTransientCtx(ctx, sys, opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled windowed run: %v, want ErrCanceled", err)
	}
	waitGoroutineBaseline(t, before)
}

// TestWindowsTraceReconciles records a windowed run's event stream and
// replays it: the replay must reconstruct the run's Stats exactly — points
// and solves across the coarse sweep, speculation, and redos (discarded
// speculative work stays in both), and the window lifecycle counters
// (seeds = launches, redos = redos, one convergence per window).
func TestWindowsTraceReconciles(t *testing.T) {
	b, ok := findSuite("rlctree8")
	if !ok {
		t.Fatal("no rlctree8 benchmark")
	}
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(0)
	res := windowedRun(t, sys, TranOptions{
		TStop: b.TStop / 5, Record: []string{b.Probe},
		Windows: 4, Observer: rec,
	})
	rc := ReplayTrace(rec.Events())
	if rc.Points != res.Stats.Points || rc.Solves != res.Stats.Solves {
		t.Fatalf("replay points/solves %d/%d, stats %d/%d",
			rc.Points, rc.Solves, res.Stats.Points, res.Stats.Solves)
	}
	if res.Stats.WindowsLaunched < 2 {
		t.Fatalf("WindowsLaunched = %d, want a real window split", res.Stats.WindowsLaunched)
	}
	if int64(rc.WindowSeeds) != res.Stats.WindowsLaunched {
		t.Fatalf("replay seeds %d, stats launches %d", rc.WindowSeeds, res.Stats.WindowsLaunched)
	}
	if int64(rc.WindowRedos) != res.Stats.WindowRedos {
		t.Fatalf("replay redos %d, stats redos %d", rc.WindowRedos, res.Stats.WindowRedos)
	}
	if int64(rc.WindowConverges) != res.Stats.WindowsLaunched {
		t.Fatalf("replay converges %d, want one per window (%d)", rc.WindowConverges, res.Stats.WindowsLaunched)
	}
}

// TestWindowsOptionValidation rejects the option combinations the windowed
// engine cannot honor, before any goroutine is launched.
func TestWindowsOptionValidation(t *testing.T) {
	b, ok := findSuite("rlctree8")
	if !ok {
		t.Fatal("no rlctree8 benchmark")
	}
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	base := TranOptions{TStop: b.TStop / 10, Record: []string{b.Probe}}
	bad := []func(*TranOptions){
		func(o *TranOptions) { o.Windows = -1 },
		func(o *TranOptions) { o.Windows = 4096 },
		func(o *TranOptions) { o.Windows = 2; o.CoarseOpts.Steps = -3 },
		func(o *TranOptions) { o.Windows = 2; o.CoarseOpts.TolScale = -1 },
		func(o *TranOptions) { o.Windows = 2; o.CoarseOpts.Gate = -1 },
		func(o *TranOptions) { o.Windows = 2; o.CheckpointPath = "x.ckpt" },
		func(o *TranOptions) { o.Windows = 2; o.Deadline = time.Second },
	}
	for i, mutate := range bad {
		opts := base
		mutate(&opts)
		if _, err := RunTransient(sys, opts); err == nil {
			t.Fatalf("case %d: invalid windowed options accepted", i)
		}
	}
}

// findSuite returns the named evaluation benchmark.
func findSuite(name string) (circuits.Benchmark, bool) {
	for _, b := range circuits.Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return circuits.Benchmark{}, false
}
