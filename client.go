package wavepipe

import "context"

// JobState enumerates the lifecycle of a submitted simulation job.
type JobState string

// Job lifecycle states. A job is terminal in JobDone, JobFailed and
// JobCanceled; JobPreempted is transient — the job yielded its cores to a
// higher-priority run, checkpointed, and is queued to resume.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobPreempted JobState = "preempted"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobSpec describes one simulation to submit through a Client.
type JobSpec struct {
	// Deck is the SPICE netlist source (required). Decks are compiled
	// through the service's artifact cache: an equivalent netlist submitted
	// before skips the symbolic analysis entirely.
	Deck string
	// Options configures the analysis. Deck cards fill unset fields
	// (Deck.ApplyTo precedence). The scheduling and durability fields are
	// owned by the service: CoreBudget and Threads size the core request,
	// while CheckpointPath, ResumeFrom, OnAccept, Observer and Faults must
	// be zero — the service installs its own.
	Options TranOptions
	// Priority orders the global queue: higher runs first, and a strictly
	// higher-priority job may preempt a running lower-priority one at its
	// next accepted-step boundary (it checkpoints and resumes later).
	Priority int
	// Label is an optional caller tag echoed in JobStatus.
	Label string
}

// JobStatus is a point-in-time snapshot of a submitted job.
type JobStatus struct {
	ID       string   `json:"id"`
	Label    string   `json:"label,omitempty"`
	State    JobState `json:"state"`
	Priority int      `json:"priority"`
	// Cores is the current grant from the global arbiter (0 unless running).
	Cores int `json:"cores"`
	// Resumes counts preemption checkpoint/resume cycles the job survived.
	Resumes int `json:"resumes"`
	// CacheHit reports whether the deck's compiled artifacts (System build,
	// fill ordering, coloring, stamp templates) were reused from the cache.
	CacheHit bool `json:"cacheHit"`
	// Signals are the waveform column names the job records.
	Signals []string `json:"signals,omitempty"`
	// Points is the number of accepted time points so far.
	Points int `json:"points"`
	// Err is the terminal error message (JobFailed / JobCanceled).
	Err string `json:"error,omitempty"`
}

// StreamPoint is one accepted time point delivered on a Stream channel:
// the values align with JobStatus.Signals.
type StreamPoint struct {
	T      float64   `json:"t"`
	Values []float64 `json:"values"`
}

// Client is the unified simulation surface: the in-process Service and the
// HTTP client (package wavepipe/client) both implement it, so callers
// switch local↔remote without code changes.
//
// Submit enqueues a job and returns immediately with its status (including
// the assigned ID and whether the compiled-artifact cache hit). Status
// snapshots a job. Wait blocks until the job is terminal and returns its
// Result — for failed jobs the partial Result (when any) alongside the
// typed simulation error; Wait may be called by any number of goroutines.
// Stream returns a channel that replays every accepted point from t=0 and
// then follows the live run; it is closed when the job ends or ctx is done.
// Cancel stops a job (idempotent; terminal jobs are unaffected). Close
// releases the client; for the in-process Service it cancels every live job
// and waits for them to unwind.
type Client interface {
	Submit(ctx context.Context, spec JobSpec) (JobStatus, error)
	Status(ctx context.Context, id string) (JobStatus, error)
	Wait(ctx context.Context, id string) (*Result, error)
	Stream(ctx context.Context, id string) (<-chan StreamPoint, error)
	Cancel(ctx context.Context, id string) error
	Close() error
}
