// Package client is the HTTP implementation of wavepipe.Client: it speaks
// the versioned wire JSON API that internal/server exposes, so swapping the
// in-process *wavepipe.Service for client.New("http://host:port") — or back
// — changes no calling code.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"wavepipe"
	"wavepipe/wire"
)

// Client talks to a wavesimd instance. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8380"). httpClient may be nil for http.DefaultClient —
// pass a custom one to set transport-level timeouts (but leave
// http.Client.Timeout zero: Wait and Stream hold their connection for the
// life of the job; bound them per call with a context instead).
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	base := strings.TrimRight(baseURL, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}, nil
}

// apiError converts a non-2xx response into an error, restoring the typed
// sentinels the status codes encode so errors.Is works across the wire.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	msg := strings.TrimSpace(string(body))
	if e := wire.DecodeError(body); e != "" {
		msg = e
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", wavepipe.ErrUnknownJob, msg)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", wavepipe.ErrQueueFull, msg)
	default:
		return fmt.Errorf("client: %s: %s", resp.Status, msg)
	}
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}

// Submit sends the deck and options to the service's queue.
func (c *Client) Submit(ctx context.Context, spec wavepipe.JobSpec) (wavepipe.JobStatus, error) {
	opts := wire.FromTranOptions(spec.Options)
	var buf bytes.Buffer
	if err := wire.Encode(&buf, wire.JobRequest{
		SchemaVersion: wire.SchemaVersion,
		Deck:          spec.Deck,
		Options:       &opts,
		Priority:      spec.Priority,
		Label:         spec.Label,
	}); err != nil {
		return wavepipe.JobStatus{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", &buf)
	if err != nil {
		return wavepipe.JobStatus{}, err
	}
	defer resp.Body.Close()
	st, err := wire.DecodeJobStatus(resp.Body)
	if err != nil {
		return wavepipe.JobStatus{}, err
	}
	return st.JobStatus, nil
}

// Status snapshots a job.
func (c *Client) Status(ctx context.Context, id string) (wavepipe.JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return wavepipe.JobStatus{}, err
	}
	defer resp.Body.Close()
	st, err := wire.DecodeJobStatus(resp.Body)
	if err != nil {
		return wavepipe.JobStatus{}, err
	}
	return st.JobStatus, nil
}

// Wait blocks until the job is terminal and returns its Result. Typed
// simulation errors do not cross the wire: a failed job returns the partial
// Result (when any) with a plain error carrying the server's message.
func (c *Client) Wait(ctx context.Context, id string) (*wavepipe.Result, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	wres, err := wire.DecodeResult(resp.Body)
	if err != nil {
		return nil, err
	}
	res, err := wres.ToResult()
	if err != nil {
		return nil, err
	}
	if wres.Err != "" {
		return res, fmt.Errorf("client: job %s: %s", id, wres.Err)
	}
	return res, nil
}

// Stream follows the job's accepted points: everything from t=0, then live
// rows. The channel closes when the job ends or ctx is done.
func (c *Client) Stream(ctx context.Context, id string) (<-chan wavepipe.StreamPoint, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	// The first NDJSON line is the header; validate its version eagerly so
	// a schema mismatch fails the call, not the channel.
	if !sc.Scan() {
		resp.Body.Close()
		if serr := sc.Err(); serr != nil {
			return nil, serr
		}
		return nil, fmt.Errorf("client: empty stream response")
	}
	if _, err := wire.DecodeStreamHeader(sc.Bytes()); err != nil {
		resp.Body.Close()
		return nil, err
	}
	out := make(chan wavepipe.StreamPoint, 64)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		for sc.Scan() {
			var p wavepipe.StreamPoint
			if json.Unmarshal(sc.Bytes(), &p) != nil {
				return
			}
			select {
			case out <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// Cancel stops a job (idempotent on terminal jobs).
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Close releases idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// compile-time check: the HTTP client is a wavepipe.Client.
var _ wavepipe.Client = (*Client)(nil)
