package wavepipe

import (
	"fmt"
	"strings"

	"wavepipe/internal/ac"
	"wavepipe/internal/dcop"
	"wavepipe/internal/device"
)

// Additional device model cards and types re-exported from internal/device.
type (
	// BJTModel is a bipolar transistor model card (Ebers–Moll transport
	// formulation with Early effect and charge storage).
	BJTModel = device.BJTModel
	// EKVModel is the smooth subthreshold-to-strong-inversion MOSFET card.
	EKVModel = device.EKVModel
	// SwitchModel parameterizes the voltage-controlled smooth switch.
	SwitchModel = device.SwitchModel
	// VSourceDevice exposes the voltage-source instance type (needed to
	// reference controlling sources of F/H elements and for DC sweeps).
	VSourceDevice = device.VSource
	// InductorDevice exposes the inductor instance type (mutual coupling).
	InductorDevice = device.Inductor
)

// BJT polarities.
const (
	NPN = device.NPN
	PNP = device.PNP
)

// DefaultBJTModel returns SPICE default BJT parameters for the polarity.
func DefaultBJTModel(t device.BJTType) BJTModel { return device.DefaultBJTModel(t) }

// DefaultEKVModel returns a generic EKV card for the polarity.
func DefaultEKVModel(t device.MOSType) EKVModel { return device.DefaultEKVModel(t) }

// DefaultSwitchModel returns SPICE-like switch defaults.
func DefaultSwitchModel() SwitchModel { return device.DefaultSwitchModel() }

// AddBJT adds a bipolar transistor (collector, base, emitter).
func AddBJT(c *Circuit, name string, col, base, em int, m BJTModel, area float64) {
	c.Add(device.NewBJT(name, col, base, em, m, area))
}

// AddMOSFETEKV adds an EKV-model MOSFET with geometry in meters.
func AddMOSFETEKV(c *Circuit, name string, d, g, s, b int, m EKVModel, w, l float64) {
	c.Add(device.NewMOSFETEKV(name, d, g, s, b, m, w, l))
}

// AddSwitch adds a voltage-controlled smooth switch.
func AddSwitch(c *Circuit, name string, p, n, cp, cn int, m SwitchModel) {
	c.Add(device.NewSwitch(name, p, n, cp, cn, m))
}

// AddVSourceAC adds a voltage source carrying both a transient waveform and
// an AC stimulus, returning the instance for later reference (DC sweeps,
// F/H control).
func AddVSourceAC(c *Circuit, name string, p, n int, w Waveform, acMag, acPhaseDeg float64) *VSourceDevice {
	src := device.NewVSource(name, p, n, w)
	src.ACMag, src.ACPhase = acMag, acPhaseDeg
	c.Add(src)
	return src
}

// AddCCCS adds a current-controlled current source (F element).
func AddCCCS(c *Circuit, name string, p, n int, ctrl *VSourceDevice, gain float64) {
	c.Add(device.NewCCCS(name, p, n, ctrl, gain))
}

// AddCCVS adds a current-controlled voltage source (H element).
func AddCCVS(c *Circuit, name string, p, n int, ctrl *VSourceDevice, gain float64) {
	c.Add(device.NewCCVS(name, p, n, ctrl, gain))
}

// AddInductorK adds an inductor and returns the instance so it can be
// mutually coupled with AddMutual.
func AddInductorK(c *Circuit, name string, p, n int, henries float64) *InductorDevice {
	l := device.NewInductor(name, p, n, henries)
	c.Add(l)
	return l
}

// AddMutual couples two inductors with coefficient k (K element).
func AddMutual(c *Circuit, name string, l1, l2 *InductorDevice, k float64) {
	c.Add(device.NewMutual(name, l1, l2, k))
}

// ACResult is the frequency-domain response of an AC analysis.
type ACResult = ac.Result

// ACOptions configures RunAC.
type ACOptions struct {
	// Sweep is "dec", "oct" or "lin" (default "dec").
	Sweep string
	// Points per decade/octave, or total for "lin" (default 10).
	Points int
	// FStart and FStop bound the sweep in Hz.
	FStart, FStop float64
	// Record lists node names to record (nil = all node voltages).
	Record []string
}

// RunAC computes the small-signal frequency response of sys, linearized at
// its DC operating point. Sources with a nonzero ACMag provide the stimulus.
func RunAC(sys *System, opts ACOptions) (*ACResult, error) {
	inner := ac.Options{FStart: opts.FStart, FStop: opts.FStop, Points: opts.Points}
	if inner.Points <= 0 {
		inner.Points = 10
	}
	switch strings.ToLower(opts.Sweep) {
	case "", "dec":
		inner.Sweep = ac.Dec
	case "oct":
		inner.Sweep = ac.Oct
	case "lin":
		inner.Sweep = ac.Lin
	default:
		return nil, fmt.Errorf("wavepipe: unknown AC sweep %q", opts.Sweep)
	}
	if opts.Record != nil {
		inner.Record = make([]int, len(opts.Record))
		for i, name := range opts.Record {
			idx, ok := sys.Circuit.FindNode(name)
			if !ok || idx == Ground {
				return nil, fmt.Errorf("wavepipe: cannot record unknown node %q", name)
			}
			inner.Record[i] = idx
		}
	}
	return ac.Run(sys, inner)
}

// RunDCSweep sweeps the given source from start to stop by step, solving
// the operating point at every value. The result's time axis carries the
// sweep values. Record lists node names (nil = all node voltages).
func RunDCSweep(sys *System, src *VSourceDevice, start, stop, step float64, record []string) (*Set, error) {
	ws := sys.NewWorkspace()
	var names []string
	var idx []int
	if record == nil {
		for i := 0; i < sys.NumNodes; i++ {
			names = append(names, sys.Circuit.NodeName(i))
			idx = append(idx, i)
		}
	} else {
		for _, name := range record {
			i, ok := sys.Circuit.FindNode(name)
			if !ok || i == Ground {
				return nil, fmt.Errorf("wavepipe: cannot record unknown node %q", name)
			}
			names = append(names, name)
			idx = append(idx, i)
		}
	}
	return dcop.Sweep(ws, src.SetDC, start, stop, step, names, idx, dcop.DefaultOptions())
}

// RunDeckAC builds a deck and runs its .AC card (or the explicit options
// when the deck has none).
func RunDeckAC(d *Deck, opts ACOptions) (*ACResult, error) {
	sys, err := d.Circuit.Build()
	if err != nil {
		return nil, err
	}
	if opts.FStart == 0 && d.AC != nil {
		opts.Sweep = d.AC.Sweep
		opts.Points = d.AC.Points
		opts.FStart = d.AC.FStart
		opts.FStop = d.AC.FStop
	}
	if opts.FStart == 0 {
		return nil, fmt.Errorf("wavepipe: deck has no .AC card and no explicit sweep")
	}
	return RunAC(sys, opts)
}

// RunDeckDC builds a deck and runs its .DC sweep card.
func RunDeckDC(d *Deck, record []string) (*Set, error) {
	if d.DC == nil {
		return nil, fmt.Errorf("wavepipe: deck has no .DC card")
	}
	src, ok := d.FindSource(d.DC.Source)
	if !ok {
		return nil, fmt.Errorf("wavepipe: .DC references unknown source %q", d.DC.Source)
	}
	sys, err := d.Circuit.Build()
	if err != nil {
		return nil, err
	}
	return RunDCSweep(sys, src, d.DC.Start, d.DC.Stop, d.DC.Step, record)
}

// RunOP computes the DC operating point and returns the node voltages by
// name (branch currents are omitted; use RunTransient with Record for
// those).
func RunOP(sys *System) (map[string]float64, error) {
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	if _, err := dcop.Solve(ws, x, dcop.DefaultOptions()); err != nil {
		return nil, err
	}
	out := make(map[string]float64, sys.NumNodes)
	for i := 0; i < sys.NumNodes; i++ {
		out[sys.Circuit.NodeName(i)] = x[i]
	}
	return out, nil
}

// DCSensitivity is one entry of a DC sensitivity analysis (.SENS).
type DCSensitivity = dcop.Sensitivity

// RunSens computes the DC small-signal sensitivities of the named node's
// voltage with respect to every parameter the circuit's devices expose
// (resistances and DC source values), via the adjoint method: one extra
// transpose solve prices all parameters.
func RunSens(sys *System, outNode string) ([]DCSensitivity, error) {
	idx, ok := sys.Circuit.FindNode(outNode)
	if !ok || idx == Ground {
		return nil, fmt.Errorf("wavepipe: unknown output node %q", outNode)
	}
	ws := sys.NewWorkspace()
	x := make([]float64, sys.N)
	return dcop.Sens(ws, x, idx, dcop.DefaultOptions())
}
