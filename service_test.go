package wavepipe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// serviceDeck is a small RC deck for quick service jobs.
const serviceDeck = `* rc lowpass
V1 in 0 PULSE(0 1 0 1n 1n 10n 20n)
R1 in out 1k
C1 out 0 1n
.tran 1n 40n
.end
`

// longDeck forces thousands of accepted points (tiny max step), so a job
// stays running long enough to be preempted mid-flight.
const longDeck = `* long rc
V1 in 0 PULSE(0 1 0 1n 1n 10n 20n)
R1 in out 1k
C1 out 0 1n
.tran 0.1n 2000n 0 0.5n
.end
`

// hugeDeck cannot finish within any test timeout (hundreds of millions of
// forced points); jobs that must occupy a core until canceled use it.
const hugeDeck = `* huge rc
V1 in 0 PULSE(0 1 0 1n 1n 10n 20n)
R1 in out 1k
C1 out 0 1n
.tran 0.1n 100000000n 0 0.5n
.end
`

func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestServiceRoundTrip: submit → stream → wait, and a repeat submission of
// the same deck hits the artifact cache.
func TestServiceRoundTrip(t *testing.T) {
	s := newTestService(t, ServiceConfig{Cores: 2})
	st, err := s.Submit(context.Background(), JobSpec{Deck: serviceDeck, Label: "first"})
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	if len(st.Signals) == 0 {
		t.Fatal("no signal names at submit time")
	}
	ch, err := s.Stream(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	var lastT float64 = -1
	for p := range ch {
		if p.T <= lastT {
			t.Fatalf("stream out of order: %g after %g", p.T, lastT)
		}
		if len(p.Values) != len(st.Signals) {
			t.Fatalf("row width %d, want %d", len(p.Values), len(st.Signals))
		}
		lastT = p.T
		streamed++
	}
	res, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Len() != streamed {
		t.Fatalf("streamed %d rows, result has %d", streamed, res.W.Len())
	}
	st2, err := s.Submit(context.Background(), JobSpec{Deck: serviceDeck})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("repeat deck missed the artifact cache")
	}
	if _, err := s.Wait(context.Background(), st2.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := s.Status(context.Background(), st2.ID)
	if err != nil || fin.State != JobDone {
		t.Fatalf("state=%v err=%v, want done", fin.State, err)
	}
}

// TestServiceGlobalBudgetNeverExceeded: many concurrent jobs, each asking
// for more cores than exist, never oversubscribe the global budget.
func TestServiceGlobalBudgetNeverExceeded(t *testing.T) {
	const cores, jobs = 2, 8
	s := newTestService(t, ServiceConfig{Cores: cores, MaxQueued: jobs})
	stop := make(chan struct{})
	var peak int
	var pmu sync.Mutex
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, inUse, _, _, _, _, _ := s.SchedSnapshot()
			pmu.Lock()
			if inUse > peak {
				peak = inUse
			}
			pmu.Unlock()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		// Distinct decks so compile misses don't serialize on the cache hit
		// path; each asks for 4 cores on a 2-core budget.
		deck := fmt.Sprintf("* j%d\nV1 in 0 PULSE(0 1 0 1n 1n 10n 20n)\nR1 in out %dk\nC1 out 0 1n\n.tran 1n 40n\n.end\n", i, i+1)
		st, err := s.Submit(context.Background(), JobSpec{
			Deck:     deck,
			Options:  TranOptions{CoreBudget: 4},
			Priority: i % 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
	}
	close(stop)
	pmu.Lock()
	defer pmu.Unlock()
	if peak > cores {
		t.Fatalf("peak cores in use %d exceeds global budget %d", peak, cores)
	}
	if total, inUse, running, queued, _, _, _ := s.SchedSnapshot(); inUse != 0 || running != 0 || queued != 0 {
		t.Fatalf("leaked scheduling state: total=%d inUse=%d running=%d queued=%d", total, inUse, running, queued)
	}
}

// TestServicePreemptionResumesBitIdentical: a higher-priority job preempts
// a running low-priority one at an accepted-step boundary; the low job
// checkpoints, resumes, and its final waveform is bit-identical to an
// uninterrupted run of the same deck.
func TestServicePreemptionResumesBitIdentical(t *testing.T) {
	s := newTestService(t, ServiceConfig{Cores: 1})
	low, err := s.Submit(context.Background(), JobSpec{Deck: longDeck, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the low job is demonstrably mid-run (some points accepted,
	// thousands still to go), then submit the high-priority job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, serr := s.Status(context.Background(), low.ID)
		if serr != nil {
			t.Fatal(serr)
		}
		if st.State.Terminal() {
			t.Fatalf("low job finished before preemption could be arranged (state %v)", st.State)
		}
		if st.Points >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("low job never started accepting points")
		}
		time.Sleep(time.Millisecond)
	}
	high, err := s.Submit(context.Background(), JobSpec{Deck: serviceDeck, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), high.ID); err != nil {
		t.Fatalf("high-priority job: %v", err)
	}
	res, err := s.Wait(context.Background(), low.ID)
	if err != nil {
		t.Fatalf("low-priority job after resume: %v", err)
	}
	lowSt, err := s.Status(context.Background(), low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lowSt.Resumes < 1 {
		t.Fatalf("low job resumes = %d, want >= 1 (was it ever preempted?)", lowSt.Resumes)
	}
	if _, _, _, _, _, _, preempts := s.SchedSnapshot(); preempts < 1 {
		t.Fatalf("arbiter preemptions = %d, want >= 1", preempts)
	}
	if lowSt.Points != res.W.Len() {
		t.Fatalf("stream saw %d points, result has %d (duplicate or lost rows across resume)", lowSt.Points, res.W.Len())
	}

	// Uninterrupted reference at the same core budget.
	d, err := ParseDeck(longDeck)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunDeck(d, TranOptions{CoreBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Len() != ref.W.Len() {
		t.Fatalf("preempted run has %d points, uninterrupted %d", res.W.Len(), ref.W.Len())
	}
	for k := range ref.W.Times {
		if res.W.Times[k] != ref.W.Times[k] {
			t.Fatalf("time %d differs: %g vs %g", k, res.W.Times[k], ref.W.Times[k])
		}
		for j := range ref.W.Names {
			if res.W.Data[k][j] != ref.W.Data[k][j] {
				t.Fatalf("sample %d signal %s differs: %g vs %g",
					k, ref.W.Names[j], res.W.Data[k][j], ref.W.Data[k][j])
			}
		}
	}
}

// TestServiceCancelMidStreamNoGoroutineLeak: canceling a job mid-stream
// closes the stream, ends the job as canceled, and leaks nothing.
func TestServiceCancelMidStreamNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := NewService(ServiceConfig{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(context.Background(), JobSpec{Deck: longDeck})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Stream(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for p := range ch {
		_ = p
		seen++
		if seen == 20 {
			if err := s.Cancel(context.Background(), st.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if seen < 20 {
		t.Fatalf("stream closed after %d rows, before the cancel point", seen)
	}
	if _, err := s.Wait(context.Background(), st.ID); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	fin, err := s.Status(context.Background(), st.ID)
	if err != nil || fin.State != JobCanceled {
		t.Fatalf("state=%v err=%v, want canceled", fin.State, err)
	}
	// Cancel is idempotent on terminal jobs.
	if err := s.Cancel(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutineBaseline(t, before)
}

// TestServiceCacheCountersReconcile: hit/miss/build counters agree with
// the submissions performed — every distinct deck builds once, every
// repeat is answered from the cache.
func TestServiceCacheCountersReconcile(t *testing.T) {
	s := newTestService(t, ServiceConfig{Cores: 2})
	const distinct, repeats = 3, 4
	var ids []string
	for r := 0; r < repeats; r++ {
		for d := 0; d < distinct; d++ {
			deck := fmt.Sprintf("* d%d\nV1 in 0 PULSE(0 1 0 1n 1n 10n 20n)\nR1 in out %dk\nC1 out 0 1n\n.tran 1n 40n\n.end\n", d, d+1)
			st, err := s.Submit(context.Background(), JobSpec{Deck: deck})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := st.CacheHit, r > 0; got != want {
				t.Fatalf("round %d deck %d: cacheHit=%v, want %v", r, d, got, want)
			}
			ids = append(ids, st.ID)
		}
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, builds := s.CacheCounters()
	if hits+misses != distinct*repeats {
		t.Fatalf("hits %d + misses %d != submissions %d", hits, misses, distinct*repeats)
	}
	if builds != distinct || misses != distinct {
		t.Fatalf("builds=%d misses=%d, want %d each (one System build per distinct deck)", builds, misses, distinct)
	}
}

// TestServiceAdmissionControl: the queue bound turns into ErrQueueFull at
// Submit, not an unbounded backlog.
func TestServiceAdmissionControl(t *testing.T) {
	s := newTestService(t, ServiceConfig{Cores: 1, MaxQueued: 1})
	first, err := s.Submit(context.Background(), JobSpec{Deck: hugeDeck})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first job to hold the core so followers queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, running, _, _, _, _ := s.SchedSnapshot(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := s.Submit(context.Background(), JobSpec{Deck: serviceDeck})
	if err != nil {
		t.Fatal(err)
	}
	// The queue (bound 1) now holds the second job; the third must bounce.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, _, _, queued, _, _, _ := s.SchedSnapshot(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(context.Background(), JobSpec{Deck: serviceDeck}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if err := s.Cancel(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), second.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServiceRejectsManagedFields: durability and observer options belong
// to the service, not the submission.
func TestServiceRejectsManagedFields(t *testing.T) {
	s := newTestService(t, ServiceConfig{Cores: 1})
	bad := []TranOptions{
		{CheckpointPath: "x"},
		{CheckpointEvery: 8},
		{ResumeFrom: "x"},
		{OnAccept: func(float64, []float64) {}},
		{Observer: NewTraceMetrics()},
		{Faults: NewFaultInjector()},
	}
	for i, o := range bad {
		if _, err := s.Submit(context.Background(), JobSpec{Deck: serviceDeck, Options: o}); err == nil {
			t.Fatalf("case %d: managed field accepted", i)
		}
	}
}
