// Package wavepipe is a parallel SPICE-class transient circuit simulator
// for multi-core shared-memory machines. It reproduces the WavePipe
// methodology (Dong, Li, Ye — DAC 2008): coarse-grained parallelism across
// adjacent time points via backward and forward waveform pipelining, on top
// of a complete MNA engine (sparse LU, Newton–Raphson, variable-step
// Gear-2/trapezoidal integration with LTE control).
//
// # Quick start
//
//	deck, _ := wavepipe.ParseDeck(netlistText)
//	sys, _ := deck.Build()
//	res, _ := wavepipe.RunTransient(sys, wavepipe.TranOptions{
//		TStop:  deck.Tran.TStop,
//		Scheme: wavepipe.Combined,
//	})
//	v, _ := res.W.At("out", 1e-6)
//
// Circuits can also be built programmatically with NewCircuit and the
// device constructors (AddResistor, AddMOSFET, ...); see examples/.
package wavepipe

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"wavepipe/internal/checkpoint"
	"wavepipe/internal/circuit"
	"wavepipe/internal/device"
	"wavepipe/internal/faults"
	"wavepipe/internal/integrate"
	"wavepipe/internal/netlist"
	"wavepipe/internal/reduce"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
	"wavepipe/internal/waveform"
	wpcore "wavepipe/internal/wavepipe"
	"wavepipe/internal/windows"
)

// Ground is the reference-node index accepted by all device constructors.
const Ground = circuit.Ground

// Re-exported core types. The aliases keep one canonical implementation in
// internal/ while giving downstream users a stable import path.
type (
	// Circuit is a netlist under construction.
	Circuit = circuit.Circuit
	// System is a compiled circuit ready to simulate.
	System = circuit.System
	// Device is the element interface (satisfied by all built-in models).
	Device = circuit.Device
	// Waveform describes a source's time dependence.
	Waveform = device.Waveform
	// DC, Pulse, Sin, PWL and Exp are the independent-source waveforms.
	DC    = device.DC
	Pulse = device.Pulse
	Sin   = device.Sin
	PWL   = device.PWL
	Exp   = device.Exp
	// DiodeModel and MOSModel are device model cards.
	DiodeModel = device.DiodeModel
	MOSModel   = device.MOSModel
	// Set is a recorded waveform group.
	Set = waveform.Set
	// Deviation summarizes a waveform comparison.
	Deviation = waveform.Deviation
	// Stats aggregates the work a run performed.
	Stats = transient.Stats
	// TranSpec is a parsed .TRAN directive.
	TranSpec = netlist.TranSpec
	// SimError is the typed simulation error: phase, time point and (when
	// known) the offending unknown, wrapping one of the Err* sentinels.
	SimError = faults.SimError
	// RecoveryLog and RecoveryEvent record the robustness actions (recovery
	// ladder climbs, serial fallbacks) a run took; see Result.Recovery.
	RecoveryLog   = transient.RecoveryLog
	RecoveryEvent = transient.RecoveryEvent
	// FaultInjector is the deterministic fault-injection harness (tests and
	// robustness drills only; see TranOptions.Faults).
	FaultInjector = faults.Injector
	// FaultRule schedules one fault class at an instrumented site.
	FaultRule = faults.Rule
	// FaultClass enumerates the injectable fault classes.
	FaultClass = faults.Class
	// CoarseOptions tunes the time-parallel (Parareal) coarse propagator
	// and per-window convergence gate; see TranOptions.Windows.
	CoarseOptions = windows.CoarseOptions
)

// Injectable fault classes.
const (
	FaultNoConvergence = faults.NoConvergence
	FaultSingular      = faults.Singular
	FaultNonFinite     = faults.NonFinite
	FaultWorkerPanic   = faults.WorkerPanic
)

// Error taxonomy sentinels: every engine failure wraps one of these, so
// callers can branch with errors.Is regardless of which layer failed.
var (
	ErrNoConvergence = faults.ErrNoConvergence
	ErrSingular      = faults.ErrSingular
	ErrNonFinite     = faults.ErrNonFinite
	ErrStepTooSmall  = faults.ErrStepTooSmall
	ErrWorkerPanic   = faults.ErrWorkerPanic
	// ErrCanceled is returned (wrapped in a SimError) by RunTransientCtx
	// when the context is canceled mid-run; the partial Result up to the
	// last completed time point is returned alongside it.
	ErrCanceled = faults.ErrCanceled
	// ErrDeadlineExceeded is returned (wrapped in a SimError) when the run
	// overruns TranOptions.Deadline; like cancellation, the partial Result is
	// returned alongside it and a final checkpoint is flushed first when
	// checkpointing is configured.
	ErrDeadlineExceeded = faults.ErrDeadlineExceeded
	// ErrStalled is returned (wrapped in a SimError) when the watchdog
	// detects that no time point has been accepted for far longer than the
	// run's trailing per-point pace (see TranOptions.StallFactor).
	ErrStalled = faults.ErrStalled
	// ErrBadCheckpoint is returned (wrapped in a SimError) when a checkpoint
	// file is truncated, corrupted, from an incompatible version, or does not
	// match the circuit and options of the resuming run.
	ErrBadCheckpoint = faults.ErrBadCheckpoint
)

// NewFaultInjector builds a fault harness from the given rules.
func NewFaultInjector(rules ...FaultRule) *FaultInjector {
	return faults.NewInjector(rules...)
}

// MOSFET polarities.
const (
	NMOS = device.NMOS
	PMOS = device.PMOS
)

// LoadMode selects the parallel device-assembly strategy.
type LoadMode = circuit.LoadMode

// Parallel assembly strategies (see TranOptions.LoadMode).
const (
	// LoadAuto chooses colored stamping when the conflict coloring predicts
	// a speedup, sharded accumulation otherwise (the default).
	LoadAuto = circuit.LoadAuto
	// LoadSharded always uses per-worker matrix shards with a reduction.
	LoadSharded = circuit.LoadSharded
	// LoadColored always uses conflict-colored direct stamping.
	LoadColored = circuit.LoadColored
)

// Method selects the implicit integration formula.
type Method = integrate.Method

// Integration methods.
const (
	BackwardEuler = integrate.BackwardEuler
	Trapezoidal   = integrate.Trapezoidal
	Gear2         = integrate.Gear2
)

// Scheme selects the simulation engine.
type Scheme int

// Simulation engines: the serial baseline, the three WavePipe schemes, and
// the conventional fine-grained parallel-device-load baseline.
const (
	Serial Scheme = iota
	Backward
	Forward
	Combined
	FineGrained
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case Serial:
		return "serial"
	case Backward:
		return "backward"
	case Forward:
		return "forward"
	case Combined:
		return "combined"
	case FineGrained:
		return "finegrain"
	default:
		return "unknown"
	}
}

// ParseScheme maps a scheme name (as produced by Scheme.String) back to the
// value. It is the inverse the CLIs and the wire schema share.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "serial", "":
		return Serial, nil
	case "backward":
		return Backward, nil
	case "forward":
		return Forward, nil
	case "combined":
		return Combined, nil
	case "finegrain":
		return FineGrained, nil
	default:
		return 0, fmt.Errorf("wavepipe: unknown scheme %q (serial, backward, forward, combined, finegrain)", s)
	}
}

// ParseMethod maps an integration-method name (as produced by Method.String)
// back to the value.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "gear2", "":
		return Gear2, nil
	case "trap":
		return Trapezoidal, nil
	case "be":
		return BackwardEuler, nil
	default:
		return 0, fmt.Errorf("wavepipe: unknown method %q (be, trap, gear2)", s)
	}
}

// LoadModeName returns the assembly-strategy name ParseLoadMode inverts.
func LoadModeName(m LoadMode) string {
	switch m {
	case LoadSharded:
		return "sharded"
	case LoadColored:
		return "colored"
	default:
		return "auto"
	}
}

// ParseLoadMode maps an assembly-strategy name back to the value.
func ParseLoadMode(s string) (LoadMode, error) {
	switch s {
	case "auto", "":
		return LoadAuto, nil
	case "sharded":
		return LoadSharded, nil
	case "colored":
		return LoadColored, nil
	default:
		return 0, fmt.Errorf("wavepipe: unknown load mode %q (auto, sharded, colored)", s)
	}
}

// NewCircuit returns an empty circuit with the given title.
func NewCircuit(title string) *Circuit { return circuit.New(title) }

// Deck is a parsed SPICE netlist: the circuit plus its analysis cards
// (.TRAN/.AC/.DC), initial conditions and .OPTIONS. It is a facade-defined
// type over the internal parser's deck so deck-level helpers (Build,
// ApplyTo) live on the public API.
type Deck netlist.Deck

// nl views the deck as the internal parser type.
func (d *Deck) nl() *netlist.Deck { return (*netlist.Deck)(d) }

// Build compiles the deck's circuit into a simulatable System.
func (d *Deck) Build() (*System, error) { return d.Circuit.Build() }

// FindSource returns the named independent voltage source (for .DC sweeps);
// names are case-insensitive.
func (d *Deck) FindSource(name string) (*device.VSource, bool) {
	return d.nl().FindSource(name)
}

// ApplyTo merges the deck's analysis cards into opts, following the
// precedence rules documented in DESIGN.md — explicitly set TranOptions
// fields always win over deck cards:
//
//   - TStop: kept if positive, else taken from .TRAN.
//   - UIC: true if set in either place.
//   - MaxStep: kept if positive, else .TRAN's TMax when present.
//   - RelTol/AbsTol: kept if positive, else .OPTIONS reltol/abstol.
//   - IC/NodeSet: kept if non-nil, else the deck's .IC/.NODESET maps.
//
// ApplyTo only merges; it never validates. The merged options flow into the
// single validation path (TranOptions.validate, run by every entry point),
// which rejects a run that ended up without a positive TStop — so a deck
// with no .TRAN and no explicit TStop fails there, not here. The receiver
// is not modified; the merged options are returned. The error result is
// always nil and retained only for call-site compatibility.
func (d *Deck) ApplyTo(opts TranOptions) (TranOptions, error) {
	if opts.TStop <= 0 && d.Tran != nil {
		opts.TStop = d.Tran.TStop
	}
	if d.Tran != nil {
		if opts.UIC || d.Tran.UIC {
			opts.UIC = true
		}
		if opts.MaxStep <= 0 && d.Tran.TMax > 0 {
			opts.MaxStep = d.Tran.TMax
		}
	}
	if opts.RelTol <= 0 {
		if v, ok := d.Options["reltol"]; ok {
			opts.RelTol = v
		}
	}
	if opts.AbsTol <= 0 {
		if v, ok := d.Options["abstol"]; ok {
			opts.AbsTol = v
		}
	}
	if len(d.ICs) > 0 && opts.IC == nil {
		opts.IC = d.ICs
	}
	if len(d.NodeSets) > 0 && opts.NodeSet == nil {
		opts.NodeSet = d.NodeSets
	}
	if len(d.Prints) > 0 {
		// Nodes the deck asks to print must survive the reduction pass;
		// appending is additive, so explicit ReduceKeep entries also stay.
		merged := make([]string, 0, len(opts.ReduceKeep)+len(d.Prints))
		merged = append(merged, opts.ReduceKeep...)
		merged = append(merged, d.Prints...)
		opts.ReduceKeep = merged
	}
	return opts, nil
}

// ParseDeck parses SPICE netlist text.
func ParseDeck(src string) (*Deck, error) {
	d, err := netlist.Parse(src)
	return (*Deck)(d), err
}

// WriteDeck renders a deck back to SPICE text.
func WriteDeck(w io.Writer, d *Deck) error {
	return netlist.Write(w, d.nl())
}

// DefaultDiodeModel returns SPICE default diode parameters.
func DefaultDiodeModel() DiodeModel { return device.DefaultDiodeModel() }

// DefaultMOSModel returns a generic Level-1 model of the given polarity.
func DefaultMOSModel(t device.MOSType) MOSModel { return device.DefaultMOSModel(t) }

// AddResistor adds a resistor and returns the circuit for chaining.
func AddResistor(c *Circuit, name string, p, n int, ohms float64) {
	c.Add(device.NewResistor(name, p, n, ohms))
}

// AddCapacitor adds a linear capacitor.
func AddCapacitor(c *Circuit, name string, p, n int, farads float64) {
	c.Add(device.NewCapacitor(name, p, n, farads))
}

// AddInductor adds a linear inductor.
func AddInductor(c *Circuit, name string, p, n int, henries float64) {
	c.Add(device.NewInductor(name, p, n, henries))
}

// AddVSource adds an independent voltage source.
func AddVSource(c *Circuit, name string, p, n int, w Waveform) {
	c.Add(device.NewVSource(name, p, n, w))
}

// AddISource adds an independent current source (current flows P→N through
// the source).
func AddISource(c *Circuit, name string, p, n int, w Waveform) {
	c.Add(device.NewISource(name, p, n, w))
}

// AddDiode adds a pn-junction diode (anode p, cathode n).
func AddDiode(c *Circuit, name string, p, n int, m DiodeModel, area float64) {
	c.Add(device.NewDiode(name, p, n, m, area))
}

// AddMOSFET adds a Level-1 MOSFET with geometry in meters.
func AddMOSFET(c *Circuit, name string, d, g, s, b int, m MOSModel, w, l float64) {
	c.Add(device.NewMOSFET(name, d, g, s, b, m, w, l))
}

// AddVCVS adds a voltage-controlled voltage source.
func AddVCVS(c *Circuit, name string, p, n, cp, cn int, gain float64) {
	c.Add(device.NewVCVS(name, p, n, cp, cn, gain))
}

// AddVCCS adds a voltage-controlled current source.
func AddVCCS(c *Circuit, name string, p, n, cp, cn int, gm float64) {
	c.Add(device.NewVCCS(name, p, n, cp, cn, gm))
}

// TranOptions configures a transient analysis through the facade.
type TranOptions struct {
	// TStop is the end of the simulation window (required).
	TStop float64
	// Scheme selects the engine (default Serial).
	Scheme Scheme
	// Threads is the worker count for the WavePipe schemes and the shard
	// count for FineGrained (default: scheme-specific, 2–3).
	Threads int
	// Method is the integration formula (default Gear2).
	Method Method
	// RelTol and AbsTol override the error tolerances (defaults 1e-3, 1e-6).
	RelTol, AbsTol float64
	// MaxStep and InitStep bound the adaptive step (defaults TStop/20 and
	// TStop·1e-6).
	MaxStep, InitStep float64
	// UIC skips the operating point and starts from IC.
	UIC bool
	// IC maps node names to initial voltages.
	IC map[string]float64
	// NodeSet maps node names to operating-point initial guesses
	// (SPICE .NODESET): Newton seeds, not constraints.
	NodeSet map[string]float64
	// Record lists node names to record (nil = all node voltages).
	Record []string
	// DeltaRatio tunes the backward offset δ/h (default 0.2).
	DeltaRatio float64
	// AggressiveGrowth enables the per-point growth-cap credit (ablation).
	AggressiveGrowth bool
	// LoadMode selects the parallel device-assembly strategy when the engine
	// evaluates devices with multiple workers (FineGrained, or WavePipe
	// schemes on top of parallel load): LoadAuto picks colored direct
	// stamping when the circuit's conflict coloring predicts a speedup and
	// falls back to sharded accumulation otherwise.
	LoadMode LoadMode
	// BypassTol enables Newton factorization bypass: when the largest
	// relative change of any Jacobian entry since the last factorization is
	// below this tolerance, the previous LU factors are reused for the
	// iteration. 0 (the default) disables bypass and keeps waveforms
	// bit-identical to the always-factorize engine.
	BypassTol float64
	// DeviceBypass enables the incremental assembly engine: exactly linear
	// devices are folded into a cached per-step-size stamp template, and
	// nonlinear devices whose controlling voltages barely moved since their
	// last evaluation are answered by replaying their recorded stamps
	// (SPICE3-style device bypass). The iteration that declares convergence
	// is always fully evaluated, so accepted waveforms agree with the plain
	// path within the Newton tolerance band. false (the default) keeps
	// assembly bit-identical to the always-evaluate engine.
	DeviceBypass bool
	// CoreBudget caps the total cores the run may occupy at once across
	// both scheduling levels. The WavePipe schemes give one core to each
	// pipeline worker and split the remainder into per-solver gangs that
	// run colored device loads and the level-scheduled LU kernels; the
	// serial engine puts the whole budget into one intra-point gang.
	// Results are bit-identical to the serial path at every budget. 0 (the
	// default) leaves scheduling unmanaged, as in earlier releases.
	CoreBudget int
	// Windows > 1 enables time-parallel simulation (pipelined Parareal):
	// a cheap coarse propagator sweeps [0, TStop] once to seed Windows
	// time windows, each refined concurrently by the selected engine and
	// accepted only when it agrees with its exact predecessor within the
	// convergence gate — otherwise the window is redone from the exact
	// state (see CoarseOpts). Final waveforms match the serial answer
	// within the existing accuracy gates; with CoarseOpts.Strict they are
	// bit-identical to the sequential window chain. Windowed runs share
	// CoreBudget across the coarse sweep and all windows, and are
	// incompatible with the durability options (CheckpointPath,
	// ResumeFrom, Deadline, StallFactor). 0/1 disables windowing.
	Windows int
	// CoarseOpts tunes the Parareal coarse propagator and convergence
	// gate when Windows > 1; the zero value selects the defaults.
	CoarseOpts CoarseOptions
	// Faults injects deterministic solver faults for robustness testing
	// (nil in production runs).
	Faults *FaultInjector
	// Observer, when non-nil, receives the run's structured telemetry:
	// per-point events (predict/solve/accept/LTE-reject/discard/recovery/
	// serial-fallback), per-phase solve timings and periodic metrics
	// snapshots. See NewTraceRecorder, NewTraceMetrics and MultiObserver
	// for ready-made observers. Nil (the default) keeps the engines'
	// hot path free of allocations, locks and clock reads.
	Observer Observer
	// SnapshotEvery is the metrics snapshot cadence in accepted points
	// (default 128; only meaningful with an Observer).
	SnapshotEvery int
	// Deadline is a wall-clock budget for the run. When positive, a run
	// exceeding it is aborted at the next solver boundary: the partial
	// Result is returned with an error satisfying
	// errors.Is(err, ErrDeadlineExceeded), and a final checkpoint is
	// flushed first when CheckpointPath is set. 0 (the default) means no
	// deadline.
	Deadline time.Duration
	// CheckpointPath enables durable checkpoints: the complete run state at
	// accepted-step boundaries is atomically written to this file every
	// CheckpointEvery accepted points and once more when the run ends for
	// any reason (success, cancellation, deadline, stall, panic). A serial
	// run resumed from such a checkpoint replays bit-identically to an
	// uninterrupted one. Empty (the default) disables checkpointing.
	CheckpointPath string
	// CheckpointEvery is the periodic snapshot cadence in accepted points
	// (default 256). Requires CheckpointPath.
	CheckpointEvery int
	// ResumeFrom resumes the run from a checkpoint file previously written
	// via CheckpointPath. The checkpoint must match the circuit (unknown
	// count, state count, device count, matrix pattern), TStop and Method of
	// this run; any mismatch or corruption yields ErrBadCheckpoint.
	ResumeFrom string
	// StallFactor arms the stall watchdog: the run is aborted with
	// ErrStalled when no time point has been accepted for longer than
	// StallFactor times the trailing exponentially-weighted per-point time
	// (never sooner than one second). Values below 2 are clamped to 2.
	// 0 (the default) disables the watchdog.
	StallFactor float64
	// OnAccept, when non-nil, observes every accepted time point right after
	// it is committed: t is the point's time and row the recorded values in
	// Result.W column order. The row aliases the result's storage — copy it
	// to retain it past the callback. Called in time order from the engine's
	// commit goroutine; never after the run returns. A resumed run does not
	// re-emit points restored from the checkpoint. This is the hook the
	// service's streaming endpoint is built on.
	OnAccept func(t float64, row []float64)
	// Reduce enables the structure-exploiting parasitic reduction pass
	// (internal/reduce) before the system is simulated: series R/L chains
	// are merged exactly and uniform RC-ladder segments are lumped into
	// low-order sections under the ReduceTol error budget, shrinking the
	// MNA dimension every downstream engine works on. Nodes named by
	// Record, ReduceKeep, IC, NodeSet or deck .PRINT cards are never
	// collapsed; suppressed node waveforms are reconstructed through the
	// expansion map when Record is nil. Circuits containing devices the
	// pass cannot analyze (current-controlled sources, mutual inductors,
	// switches) are left untouched. false (the default) keeps runs
	// bit-identical to earlier releases.
	Reduce bool
	// ReduceTol is the waveform error budget for the lossy ladder-lumping
	// transform when Reduce is set. 0 selects exact mode: only
	// error-free series merges are applied. The CLI default is
	// DefaultReduceTol.
	ReduceTol float64
	// ReduceKeep lists additional node names that must survive reduction
	// (beyond Record/IC/NodeSet and deck .PRINT references). Naming an
	// unknown node fails the run with a typed *ReduceUnknownNodeError.
	ReduceKeep []string
}

// DefaultReduceTol is the ladder-lumping error budget the CLI applies when
// -reduce is given without -reduce-tol: roughly 8 lumped sections, keeping
// waveform deviations comfortably inside the suite's 5% equivalence bar.
const DefaultReduceTol = 0.02

// ReduceUnknownNodeError is the typed error returned when reduction is
// asked to preserve a node the circuit does not define.
type ReduceUnknownNodeError = reduce.UnknownNodeError

// validate rejects option values that would otherwise flow silently into
// the engines and corrupt a run (the engines clamp what they can, but
// nonsense deserves a loud answer at the API boundary). It is the single
// validation path behind every entry point — RunTransientCtx, the ensemble
// runner, and the service — and runs after Deck.ApplyTo's merge, so it sees
// the effective options whichever side supplied them.
func (o TranOptions) validate() error {
	if o.TStop <= 0 || math.IsNaN(o.TStop) {
		return fmt.Errorf("wavepipe: TStop must be positive (set TranOptions.TStop or simulate a deck with a .TRAN card)")
	}
	if math.IsNaN(o.RelTol) || o.RelTol < 0 {
		return fmt.Errorf("wavepipe: RelTol must not be negative or NaN (got %g)", o.RelTol)
	}
	if math.IsNaN(o.AbsTol) || o.AbsTol < 0 {
		return fmt.Errorf("wavepipe: AbsTol must not be negative or NaN (got %g)", o.AbsTol)
	}
	if math.IsNaN(o.MaxStep) || o.MaxStep < 0 {
		return fmt.Errorf("wavepipe: MaxStep must not be negative or NaN (got %g)", o.MaxStep)
	}
	if math.IsNaN(o.InitStep) || o.InitStep < 0 {
		return fmt.Errorf("wavepipe: InitStep must not be negative or NaN (got %g)", o.InitStep)
	}
	if o.Threads < 0 {
		return fmt.Errorf("wavepipe: Threads must not be negative (got %d)", o.Threads)
	}
	if o.Threads > 1024 {
		return fmt.Errorf("wavepipe: Threads %d is not a plausible worker count (max 1024)", o.Threads)
	}
	if math.IsNaN(o.DeltaRatio) {
		return fmt.Errorf("wavepipe: DeltaRatio must not be NaN")
	}
	if o.DeltaRatio < 0 {
		return fmt.Errorf("wavepipe: DeltaRatio must not be negative (got %g): the backward offset δ = DeltaRatio·h must stay inside the step", o.DeltaRatio)
	}
	if o.DeltaRatio >= 1 {
		return fmt.Errorf("wavepipe: DeltaRatio %g must be below 1: a backward point at δ ≥ h would precede the current time", o.DeltaRatio)
	}
	if o.CoreBudget < 0 {
		return fmt.Errorf("wavepipe: CoreBudget must not be negative (got %d)", o.CoreBudget)
	}
	if o.CoreBudget > 1024 {
		return fmt.Errorf("wavepipe: CoreBudget %d is not a plausible core count (max 1024)", o.CoreBudget)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("wavepipe: Deadline must not be negative (got %v)", o.Deadline)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("wavepipe: CheckpointEvery must not be negative (got %d)", o.CheckpointEvery)
	}
	if o.CheckpointEvery > 0 && o.CheckpointPath == "" {
		return fmt.Errorf("wavepipe: CheckpointEvery requires CheckpointPath")
	}
	if math.IsNaN(o.StallFactor) {
		return fmt.Errorf("wavepipe: StallFactor must not be NaN")
	}
	if o.StallFactor < 0 {
		return fmt.Errorf("wavepipe: StallFactor must not be negative (got %g)", o.StallFactor)
	}
	if o.Windows < 0 {
		return fmt.Errorf("wavepipe: Windows must not be negative (got %d)", o.Windows)
	}
	if o.Windows > 1024 {
		return fmt.Errorf("wavepipe: Windows %d is not a plausible window count (max 1024)", o.Windows)
	}
	if o.CoarseOpts.Steps < 0 {
		return fmt.Errorf("wavepipe: CoarseOpts.Steps must not be negative (got %d)", o.CoarseOpts.Steps)
	}
	if math.IsNaN(o.CoarseOpts.TolScale) || o.CoarseOpts.TolScale < 0 {
		return fmt.Errorf("wavepipe: CoarseOpts.TolScale must not be negative or NaN (got %g)", o.CoarseOpts.TolScale)
	}
	if math.IsNaN(o.CoarseOpts.Gate) || o.CoarseOpts.Gate < 0 {
		return fmt.Errorf("wavepipe: CoarseOpts.Gate must not be negative or NaN (got %g)", o.CoarseOpts.Gate)
	}
	if math.IsNaN(o.ReduceTol) || o.ReduceTol < 0 {
		return fmt.Errorf("wavepipe: ReduceTol must not be negative or NaN (got %g)", o.ReduceTol)
	}
	if o.ReduceTol >= 1 {
		return fmt.Errorf("wavepipe: ReduceTol %g is not a plausible error budget (must be below 1)", o.ReduceTol)
	}
	if o.Windows > 1 &&
		(o.CheckpointPath != "" || o.ResumeFrom != "" || o.Deadline > 0 || o.StallFactor > 0) {
		return fmt.Errorf("wavepipe: Windows is incompatible with the durability options (CheckpointPath, ResumeFrom, Deadline, StallFactor): a time-parallel run has no single linear engine state to checkpoint")
	}
	return nil
}

// Result is the outcome of a transient analysis.
type Result = transient.Result

// Compare computes the deviation of a signal between two result waveforms.
func Compare(a, ref *Set, signal string) (Deviation, error) {
	return waveform.Compare(a, ref, signal)
}

// RunTransient simulates sys with the selected engine. It is shorthand for
// RunTransientCtx with a background context.
//
// Deprecated: new code should call RunTransientCtx (context-first core) or,
// when jobs need queueing, streaming or cancellation by ID, the Client
// interface (NewService in-process, client.New over HTTP). This wrapper is
// kept so existing callers keep compiling.
func RunTransient(sys *System, opts TranOptions) (*Result, error) {
	return RunTransientCtx(context.Background(), sys, opts)
}

// RunTransientCtx simulates sys with the selected engine under a context.
// Cancellation is honoured at every time-point boundary: the partial Result
// computed so far is returned together with a typed error satisfying
// errors.Is(err, ErrCanceled). When opts.Observer is non-nil the run streams
// structured telemetry into it (see TranOptions.Observer).
//
// Durability: TranOptions.CheckpointPath / Deadline / StallFactor arm a run
// guard that snapshots state at accepted-step boundaries and aborts overdue
// or stalled runs with a typed error (ErrDeadlineExceeded, ErrStalled); a
// panic escaping any engine layer is contained here and converted into an
// ErrWorkerPanic-wrapped error with the Result salvaged from the last
// retained snapshot. See TranOptions.ResumeFrom for restarting a run.
func RunTransientCtx(ctx context.Context, sys *System, opts TranOptions) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rsys, err := reduceSystem(sys, opts)
	if err != nil {
		return nil, err
	}
	sys = rsys
	base, err := baseOptions(sys, opts)
	if err != nil {
		return nil, err
	}
	base.Ctx = ctx
	base.Trace = trace.New(opts.Observer, opts.SnapshotEvery)

	var ctl *checkpoint.Controller
	if opts.CheckpointPath != "" || opts.Deadline > 0 || opts.StallFactor > 0 {
		ctl = checkpoint.NewController(checkpoint.Config{
			Path:        opts.CheckpointPath,
			Every:       opts.CheckpointEvery,
			Deadline:    opts.Deadline,
			StallFactor: opts.StallFactor,
		})
		ctl.SetTracer(base.Trace)
		base.Guard = ctl
	}
	if opts.ResumeFrom != "" {
		st, lerr := checkpoint.Load(opts.ResumeFrom)
		if lerr != nil {
			return nil, lerr
		}
		base.Resume = st
	}
	if ctl != nil {
		ctl.Start()
		defer ctl.Stop()
	}
	res, err := runEngine(sys, opts, base)
	if res == nil && err != nil && ctl != nil {
		// A panic (or any failure that kept the engine from returning its
		// partial result) still salvages the last snapshot the guard kept.
		res = transient.SalvageResult(ctl.Retained())
	}
	finishReduced(sys, opts, res)
	return res, err
}

// reduceSystem runs the parasitic-reduction pass when opts asks for it and
// sys has not been through it already (the artifact cache attaches the
// reduction record to cached systems, including a no-op marker, so cached
// entries are never reduced twice). The keep list protects every node the
// caller can observe or seed: Record, ReduceKeep, IC and NodeSet names.
// When the pass is a no-op the original compiled System is returned
// unchanged, preserving bit-identical results.
func reduceSystem(sys *System, opts TranOptions) (*System, error) {
	if !opts.Reduce || sys.Reduction() != nil {
		return sys, nil
	}
	keep := reduceKeepList(opts)
	rc, ri, err := reduce.Reduce(sys.Circuit, reduce.Options{Tol: opts.ReduceTol, Keep: keep})
	if err != nil {
		return nil, err
	}
	if ri == nil {
		return sys, nil
	}
	rsys, err := rc.Build()
	if err != nil {
		return nil, fmt.Errorf("wavepipe: reduced circuit failed to build: %w", err)
	}
	rsys.SetReduction(ri)
	return rsys, nil
}

// reduceKeepList collects every node name reduction must preserve for the
// run to be observationally equivalent to the unreduced one.
func reduceKeepList(opts TranOptions) []string {
	keep := make([]string, 0, len(opts.Record)+len(opts.ReduceKeep)+len(opts.IC)+len(opts.NodeSet))
	keep = append(keep, opts.Record...)
	keep = append(keep, opts.ReduceKeep...)
	for name := range opts.IC {
		keep = append(keep, name)
	}
	for name := range opts.NodeSet {
		keep = append(keep, name)
	}
	return keep
}

// finishReduced fills the reduction counters on a finished run and, for
// default recording, expands the reduced waveform back onto the full
// original node set so callers see the same signals with and without
// Reduce.
func finishReduced(sys *System, opts TranOptions, res *Result) {
	ri := sys.Reduction()
	if ri == nil || res == nil {
		return
	}
	res.Stats.ReducedNodes = int64(ri.RemovedNodes)
	res.Stats.ReducedDevices = int64(ri.RemovedDevices)
	if ri.RemovedNodes == 0 || opts.Record != nil || res.W == nil {
		return
	}
	res.W = expandSet(ri, res.W)
}

// expandSet reconstructs the suppressed node waveforms of a default-record
// result: the reduced engine recorded every reduced node voltage in node
// order, so column j is reduced node j and each original node is an affine
// combination of columns. Sets with any other shape (partial salvage,
// custom recording) are returned unchanged.
func expandSet(ri *circuit.ReducedInfo, w *waveform.Set) *waveform.Set {
	nRed := len(ri.OrigNodes) - ri.RemovedNodes
	if len(w.Names) != nRed {
		return w
	}
	names := make([]string, len(ri.OrigNodes))
	index := make([]int, len(ri.OrigNodes))
	copy(names, ri.OrigNodes)
	for o := range index {
		index[o] = o
	}
	data := make([][]float64, len(w.Data))
	for k, row := range w.Data {
		out := make([]float64, len(names))
		for o := range names {
			out[o] = ri.ExpandValue(o, row)
		}
		data[k] = out
	}
	ns, err := waveform.Restore(names, index, w.Times, data)
	if err != nil {
		return w
	}
	return ns
}

// runEngine dispatches to the selected engine with panic containment: a
// panic escaping any engine layer becomes an ErrWorkerPanic-wrapped typed
// error instead of tearing down the process, so the caller still receives
// the salvaged partial Result and any final checkpoint the deferred save
// flushed during unwinding.
func runEngine(sys *System, opts TranOptions, base transient.Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &faults.SimError{
				Phase: "transient", Node: -1,
				Cause: fmt.Errorf("%w: engine panic: %v", faults.ErrWorkerPanic, r),
			}
		}
	}()
	if opts.Windows > 1 {
		return windows.Run(sys, windows.Options{
			W:                opts.Windows,
			Coarse:           opts.CoarseOpts,
			Base:             base,
			ThreadsPerWindow: effectiveThreads(opts),
			CoreBudget:       opts.CoreBudget,
			Fine: func(b transient.Options) (*Result, error) {
				return runSchemeEngine(sys, opts, b)
			},
		})
	}
	return runSchemeEngine(sys, opts, base)
}

// effectiveThreads is the core cost of one fine engine instance under the
// selected scheme — the gang width the window coordinator splits the core
// budget by. It mirrors the engines' own defaulting (wpcore.withDefaults).
func effectiveThreads(opts TranOptions) int {
	th := opts.Threads
	switch opts.Scheme {
	case Serial:
		return 1
	case FineGrained:
		if th <= 1 {
			th = 2
		}
		return th
	case Forward:
		return 2
	case Backward:
		if th <= 0 {
			th = 2
		}
	case Combined:
		if th <= 0 {
			th = 3
		}
	}
	if th > 4 {
		th = 4
	}
	return th
}

// runSchemeEngine dispatches one engine run. It carries its own panic
// containment because the window coordinator calls it from per-window
// worker goroutines, where an escaping panic would tear down the process
// instead of unwinding through runEngine's recover.
func runSchemeEngine(sys *System, opts TranOptions, base transient.Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &faults.SimError{
				Phase: "transient", Node: -1,
				Cause: fmt.Errorf("%w: engine panic: %v", faults.ErrWorkerPanic, r),
			}
		}
	}()
	switch opts.Scheme {
	case Serial:
		return transient.Run(sys, base)
	case FineGrained:
		base.LoadWorkers = opts.Threads
		if base.LoadWorkers <= 1 {
			base.LoadWorkers = 2
		}
		return transient.Run(sys, base)
	case Backward, Forward, Combined:
		wopts := wpcore.Options{
			Base:             base,
			Threads:          opts.Threads,
			DeltaRatio:       opts.DeltaRatio,
			AggressiveGrowth: opts.AggressiveGrowth,
		}
		switch opts.Scheme {
		case Backward:
			wopts.Scheme = wpcore.SchemeBackward
		case Forward:
			wopts.Scheme = wpcore.SchemeForward
		default:
			wopts.Scheme = wpcore.SchemeCombined
		}
		return wpcore.Run(sys, wopts)
	default:
		return nil, fmt.Errorf("wavepipe: unknown scheme %d", opts.Scheme)
	}
}

// RunDeck builds and simulates a parsed deck, honouring its .TRAN, .IC and
// .OPTIONS cards (explicit TranOptions fields win over deck options; see
// Deck.ApplyTo for the precedence rules).
//
// Deprecated: new code should call RunDeckCtx, or Submit the deck source to
// a Client (NewService in-process, client.New over HTTP) to get queueing,
// artifact caching and streaming. This wrapper is kept so existing callers
// keep compiling.
func RunDeck(d *Deck, opts TranOptions) (*Result, error) {
	return RunDeckCtx(context.Background(), d, opts)
}

// RunDeckCtx is RunDeck under a context (see RunTransientCtx).
func RunDeckCtx(ctx context.Context, d *Deck, opts TranOptions) (*Result, error) {
	sys, err := d.Build()
	if err != nil {
		return nil, err
	}
	opts, err = d.ApplyTo(opts)
	if err != nil {
		return nil, err
	}
	return RunTransientCtx(ctx, sys, opts)
}

// baseOptions translates facade options into engine options, resolving node
// names to solution-vector indices. Pure translation: the options were
// already vetted by the single validate() path.
func baseOptions(sys *System, opts TranOptions) (transient.Options, error) {
	base := transient.Options{
		TStop:      opts.TStop,
		Method:     opts.Method,
		HInit:      opts.InitStep,
		UIC:        opts.UIC,
		Faults:     opts.Faults,
		LoadMode:   opts.LoadMode,
		BypassTol:  opts.BypassTol,
		CoreBudget: opts.CoreBudget,
		OnAccept:   opts.OnAccept,
	}
	if opts.DeviceBypass {
		base.DeviceBypassTol = transient.DefaultDeviceBypassTol
	}
	ctrl := integrate.DefaultControl(opts.TStop)
	if opts.RelTol > 0 {
		ctrl.Tol.RelTol = opts.RelTol
	}
	if opts.AbsTol > 0 {
		ctrl.Tol.AbsTol = opts.AbsTol
	}
	if opts.MaxStep > 0 {
		ctrl.HMax = opts.MaxStep
	}
	base.Control = ctrl
	if len(opts.IC) > 0 {
		base.IC = make(map[int]float64, len(opts.IC))
		for name, v := range opts.IC {
			idx, ok := sys.Circuit.FindNode(name)
			if !ok {
				return base, fmt.Errorf("wavepipe: IC for unknown node %q", name)
			}
			if idx == Ground {
				continue
			}
			base.IC[idx] = v
		}
	}
	if len(opts.NodeSet) > 0 {
		base.NodeSet = make(map[int]float64, len(opts.NodeSet))
		for name, v := range opts.NodeSet {
			idx, ok := sys.Circuit.FindNode(name)
			if !ok {
				return base, fmt.Errorf("wavepipe: NODESET for unknown node %q", name)
			}
			if idx == Ground {
				continue
			}
			base.NodeSet[idx] = v
		}
	}
	if len(opts.Record) > 0 {
		base.Record = make([]int, len(opts.Record))
		for i, name := range opts.Record {
			idx, ok := sys.Circuit.FindNode(name)
			if !ok || idx == Ground {
				return base, fmt.Errorf("wavepipe: cannot record unknown node %q", name)
			}
			base.Record[i] = idx
		}
	}
	return base, nil
}
