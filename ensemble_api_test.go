package wavepipe

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

const sweepDeck = `rc corner fixture
.param rval=1k
V1 in 0 PULSE(0 1 0 1p 1p 1 2)
R1 in out {rval}
C1 out 0 1n
.tran 1n 5u
.end
`

// RunEnsemble must elaborate one lane per variant — .PARAM overrides and
// direct device overrides — and every lane's waveform must match its own
// serial RunDeck bit for bit.
func TestRunEnsembleMatchesSerial(t *testing.T) {
	d, err := ParseDeck(sweepDeck)
	if err != nil {
		t.Fatal(err)
	}
	variants := []LaneSpec{
		{Name: "nominal"},
		{Name: "fast", Params: map[string]float64{"rval": 470}},
		{Name: "slow", Params: map[string]float64{"rval": 2.2e3}},
		{Name: "bigC", Devices: map[string]float64{"C1": 2.2e-9}},
	}
	res, err := RunEnsemble(d, variants, TranOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lanes) != len(variants) {
		t.Fatalf("%d lane results, want %d", len(res.Lanes), len(variants))
	}

	for i, spec := range variants {
		lr := res.Lanes[i]
		if lr.Name != spec.Name {
			t.Fatalf("lane %d named %q, want %q", i, lr.Name, spec.Name)
		}
		if lr.Err != nil {
			t.Fatalf("lane %q failed: %v", lr.Name, lr.Err)
		}
		// Serial reference: re-elaborate the same variant by hand.
		src := sweepDeck
		if v, ok := spec.Params["rval"]; ok {
			src = strings.Replace(src, "rval=1k", "rval="+trim(v), 1)
		}
		sd, err := ParseDeck(src)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := spec.Devices["C1"]; ok {
			for _, dev := range sd.Circuit.Devices() {
				if strings.EqualFold(dev.Name(), "C1") {
					dev.(interface{ SetValue(float64) }).SetValue(v)
				}
			}
		}
		want, err := RunDeck(sd, TranOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := lr.Res.W
		if got.Len() != want.W.Len() {
			t.Fatalf("lane %q: %d points vs serial %d", lr.Name, got.Len(), want.W.Len())
		}
		for p := range got.Times {
			if got.Times[p] != want.W.Times[p] {
				t.Fatalf("lane %q point %d: t=%g vs %g", lr.Name, p, got.Times[p], want.W.Times[p])
			}
			for j := range got.Data[p] {
				if got.Data[p][j] != want.W.Data[p][j] {
					t.Fatalf("lane %q point %d signal %d diverged", lr.Name, p, j)
				}
			}
		}
	}

	// The corners must actually differ from one another.
	vNom, _ := res.Lanes[0].Res.W.At("out", 1e-6)
	vFast, _ := res.Lanes[1].Res.W.At("out", 1e-6)
	if math.Abs(vNom-vFast) < 1e-3 {
		t.Fatalf("fast corner did not separate from nominal: %g vs %g", vFast, vNom)
	}
	if res.Stats.CriticalNanos <= 0 {
		t.Fatal("aggregate critical path missing")
	}
}

func trim(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Unknown parameter and device names must be rejected, not silently run
// as the nominal circuit.
func TestRunEnsembleRejectsUnknownNames(t *testing.T) {
	d, err := ParseDeck(sweepDeck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunEnsemble(d, []LaneSpec{{Params: map[string]float64{"rvla": 1}}}, TranOptions{}); err == nil {
		t.Fatal("misspelled parameter accepted")
	}
	if _, err := RunEnsemble(d, []LaneSpec{{Devices: map[string]float64{"R9": 1}}}, TranOptions{}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := RunEnsemble(d, nil, TranOptions{}); err == nil {
		t.Fatal("empty variant list accepted")
	}
	if _, err := RunEnsemble(d, []LaneSpec{{}}, TranOptions{Scheme: Combined}); err == nil {
		t.Fatal("non-serial scheme accepted")
	}
	if _, err := RunEnsemble(d, []LaneSpec{{}}, TranOptions{DeviceBypass: true}); err == nil {
		t.Fatal("device bypass accepted")
	}
}

// RunEnsembleCircuits covers programmatic lanes (no deck source).
func TestRunEnsembleCircuits(t *testing.T) {
	mk := func(r float64) *Circuit {
		c := NewCircuit("rc")
		in, out := c.Node("in"), c.Node("out")
		AddVSource(c, "V1", in, Ground, DC(1))
		AddResistor(c, "R1", in, out, r)
		AddCapacitor(c, "C1", out, Ground, 1e-9)
		return c
	}
	res, err := RunEnsembleCircuits([]*Circuit{mk(1e3), mk(2e3)}, TranOptions{TStop: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i, lr := range res.Lanes {
		if lr.Err != nil {
			t.Fatalf("lane %d: %v", i, lr.Err)
		}
		v, err := lr.Res.W.At("out", 5e-6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-1) > 1e-2 {
			t.Fatalf("lane %d did not settle: %g", i, v)
		}
	}
}
