// Full-wave bridge rectifier: a nonlinear analog workload parsed from an
// embedded SPICE deck, simulated with forward pipelining, with the output
// ripple measured and the waveform exported as CSV for plotting.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"wavepipe"
)

const deck = `full-wave bridge rectifier with RC filter
.model dbridge d(is=1e-12 n=1.05 tt=10n cj0=10p vj=0.8 m=0.45)
Vac acp acn SIN(0 10 1k)
Rref acn 0 1meg
D1 acp outp dbridge
D2 acn outp dbridge
D3 outn acp dbridge
D4 outn acn dbridge
Cf outp outn 2u
RL outp outn 2k
Rgnd outn 0 10
.tran 10u 6m
.end
`

func main() {
	d, err := wavepipe.ParseDeck(deck)
	if err != nil {
		log.Fatal(err)
	}
	res, err := wavepipe.RunDeck(d, wavepipe.TranOptions{
		Scheme:  wavepipe.Forward,
		Threads: 2,
		Record:  []string{"outp", "outn", "acp"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ripple of the differential output over the last two input cycles.
	outp, _ := res.W.Signal("outp")
	outn, _ := res.W.Signal("outn")
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range outp {
		if res.W.Times[i] < 4e-3 {
			continue // skip the charge-up transient
		}
		v := outp[i] - outn[i]
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	fmt.Printf("bridge rectifier, 1 kHz / 10 V input\n")
	fmt.Printf("steady-state output: %.3f V mean, %.1f mV peak-to-peak ripple\n",
		(hi+lo)/2, (hi-lo)*1e3)
	fmt.Printf("simulated %d points in %d pipeline stages (%d speculative discards)\n",
		res.Stats.Points, res.Stats.Stages, res.Stats.Discarded)

	f, err := os.Create("rectifier.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.W.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("waveforms written to rectifier.csv")
}
