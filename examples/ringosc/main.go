// CMOS ring oscillator: build a 7-stage ring programmatically, simulate it
// with the serial engine and WavePipe backward pipelining, and verify that
// both agree on the oscillation frequency — the analog-accuracy showcase,
// since an accumulated phase error would immediately shift the measured
// period.
package main

import (
	"fmt"
	"log"

	"wavepipe"
)

func buildRing(stages int, vdd float64) *wavepipe.System {
	c := wavepipe.NewCircuit("ring")
	supply := c.Node("vdd")
	wavepipe.AddVSource(c, "VDD", supply, wavepipe.Ground, wavepipe.DC(vdd))
	nm := wavepipe.DefaultMOSModel(wavepipe.NMOS)
	pm := wavepipe.DefaultMOSModel(wavepipe.PMOS)
	pm.KP = 45e-6
	nodes := make([]int, stages)
	for i := range nodes {
		nodes[i] = c.Node(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < stages; i++ {
		in, out := nodes[i], nodes[(i+1)%stages]
		wavepipe.AddMOSFET(c, fmt.Sprintf("MP%d", i), out, in, supply, supply, pm, 2e-6, 0.5e-6)
		wavepipe.AddMOSFET(c, fmt.Sprintf("MN%d", i), out, in, wavepipe.Ground, wavepipe.Ground, nm, 1e-6, 0.5e-6)
		wavepipe.AddCapacitor(c, fmt.Sprintf("CL%d", i), out, wavepipe.Ground, 5e-15)
	}
	// Kick stage 0 off the metastable operating point.
	wavepipe.AddISource(c, "Ikick", nodes[0], wavepipe.Ground, wavepipe.Pulse{
		V1: 0, V2: 50e-6, Delay: 0.05e-9, Rise: 0.05e-9, Width: 0.3e-9,
	})
	sys, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// measurePeriod extracts the mean period from rising mid-rail crossings in
// the second half of the waveform (after startup).
func measurePeriod(w *wavepipe.Set, signal string, mid float64) float64 {
	sig, err := w.Signal(signal)
	if err != nil {
		log.Fatal(err)
	}
	var crossings []float64
	for i := len(sig) / 2; i < len(sig); i++ {
		if sig[i-1] < mid && sig[i] >= mid {
			// Linear interpolation of the crossing time.
			f := (mid - sig[i-1]) / (sig[i] - sig[i-1])
			crossings = append(crossings, w.Times[i-1]+f*(w.Times[i]-w.Times[i-1]))
		}
	}
	if len(crossings) < 2 {
		return 0
	}
	return (crossings[len(crossings)-1] - crossings[0]) / float64(len(crossings)-1)
}

func main() {
	const vdd = 1.8
	sys := buildRing(7, vdd)
	opts := wavepipe.TranOptions{TStop: 20e-9, Record: []string{"s0"}}

	serial, err := wavepipe.RunTransient(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	bw := opts
	bw.Scheme = wavepipe.Backward
	bw.Threads = 3
	pipelined, err := wavepipe.RunTransient(sys, bw)
	if err != nil {
		log.Fatal(err)
	}

	pSerial := measurePeriod(serial.W, "s0", vdd/2)
	pPipe := measurePeriod(pipelined.W, "s0", vdd/2)
	fmt.Printf("7-stage ring oscillator (%d unknowns)\n", sys.N)
	fmt.Printf("serial:   period %.4g ns  (f = %.3f GHz, %d points)\n",
		pSerial*1e9, 1e-9/pSerial, serial.Stats.Points)
	fmt.Printf("wavepipe: period %.4g ns  (f = %.3f GHz, %d points in %d stages)\n",
		pPipe*1e9, 1e-9/pPipe, pipelined.Stats.Points, pipelined.Stats.Stages)
	fmt.Printf("period mismatch: %.3g%%\n", 100*(pPipe-pSerial)/pSerial)

	dev, err := wavepipe.Compare(pipelined.W, serial.W, "s0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waveform deviation: max %.3g V over a %.3g V swing\n", dev.Max, dev.Range)
}
