// Filter characterization across all three analyses: an RLC band-pass is
// swept in frequency (AC), stepped in bias (DC sweep of the source value),
// and driven in time (WavePipe transient), with the resonant frequency
// cross-checked between the AC peak and the transient ring-down, and the
// distortion of a diode-loaded variant quantified with Fourier analysis.
package main

import (
	"fmt"
	"log"
	"math"

	"wavepipe"
)

const deck = `parametrized RLC band-pass
.param l=10u c=2.533n rq=50
V1 in 0 DC 0 AC 1 SIN(0 1 1meg)
RS in n1 {rq}
L1 n1 out {l}
C1 out 0 {c}
RL out 0 10k
.ac dec 40 100k 10meg
.tran 10n 20u
.end
`

func main() {
	d, err := wavepipe.ParseDeck(deck)
	if err != nil {
		log.Fatal(err)
	}

	// --- AC: find the resonance from the Bode magnitude. ---
	acRes, err := wavepipe.RunDeckAC(d, wavepipe.ACOptions{Record: []string{"out"}})
	if err != nil {
		log.Fatal(err)
	}
	db, _ := acRes.MagDB("out")
	peakF, peakDB := 0.0, math.Inf(-1)
	for k, f := range acRes.Freqs {
		if db[k] > peakDB {
			peakDB, peakF = db[k], f
		}
	}
	f0 := 1 / (2 * math.Pi * math.Sqrt(10e-6*2.533e-9))
	fmt.Printf("AC:   peak %.2f dB at %.3g Hz (theory f0 = %.3g Hz)\n", peakDB, peakF, f0)

	// --- Transient: drive at the resonant frequency with WavePipe and
	// measure the steady-state output. ---
	tr, err := wavepipe.RunDeck(d, wavepipe.TranOptions{
		Scheme:  wavepipe.Backward,
		Threads: 2,
		Record:  []string{"in", "out"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fMeas, err := tr.W.Frequency("out", 10e-6)
	if err != nil {
		log.Fatal(err)
	}
	rms, _ := tr.W.RMS("out", 15e-6, 20e-6)
	fmt.Printf("TRAN: output frequency %.3g Hz, steady RMS %.3f V (%d points in %d stages)\n",
		fMeas, rms, tr.Stats.Points, tr.Stats.Stages)

	// --- Fourier: the linear filter passes a clean tone... ---
	four, err := tr.W.FourierAnalyze("out", 1e6, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FOUR: fundamental %.3f V, THD %.4f%%\n", four.Magnitude[0], 100*four.THD)

	// --- ...and a diode across the load does not. ---
	dist := `diode-loaded band-pass
V1 in 0 SIN(0 1 1meg)
RS in n1 50
L1 n1 out 10u
C1 out 0 2.533n
RL out 0 10k
.model dl d(is=1e-12 n=1.4)
D1 out 0 dl
.tran 10n 20u
.end
`
	d2, err := wavepipe.ParseDeck(dist)
	if err != nil {
		log.Fatal(err)
	}
	tr2, err := wavepipe.RunDeck(d2, wavepipe.TranOptions{
		Scheme: wavepipe.Combined, Threads: 3, Record: []string{"out"},
	})
	if err != nil {
		log.Fatal(err)
	}
	four2, err := tr2.W.FourierAnalyze("out", 1e6, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FOUR: diode-loaded THD %.2f%% (clipping visible in harmonics 2..4: %.3f %.3f %.3f V)\n",
		100*four2.THD, four2.Magnitude[1], four2.Magnitude[2], four2.Magnitude[3])
}
