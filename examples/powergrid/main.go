// Power-grid droop analysis: build a 20×20 on-chip power-distribution mesh
// programmatically, hit it with synchronized switching-current loads, and
// compare every engine's time-to-solution model on the same workload — the
// paper's headline experiment in miniature.
package main

import (
	"fmt"
	"log"
	"math"

	"wavepipe"
)

func buildGrid(n int, vdd float64) (*wavepipe.System, string) {
	c := wavepipe.NewCircuit("powergrid")
	name := func(i, j int) string { return fmt.Sprintf("n%d_%d", i, j) }
	supply := c.Node("vdd")
	wavepipe.AddVSource(c, "VDD", supply, wavepipe.Ground, wavepipe.DC(vdd))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			nd := c.Node(name(i, j))
			wavepipe.AddCapacitor(c, fmt.Sprintf("C%d_%d", i, j), nd, wavepipe.Ground, 1e-12)
			if j+1 < n {
				wavepipe.AddResistor(c, fmt.Sprintf("Rh%d_%d", i, j), nd, c.Node(name(i, j+1)), 0.5)
			}
			if i+1 < n {
				wavepipe.AddResistor(c, fmt.Sprintf("Rv%d_%d", i, j), nd, c.Node(name(i+1, j)), 0.5)
			}
		}
	}
	for k, corner := range [][2]int{{0, 0}, {0, n - 1}, {n - 1, 0}, {n - 1, n - 1}} {
		nd, _ := c.FindNode(name(corner[0], corner[1]))
		wavepipe.AddResistor(c, fmt.Sprintf("Rpkg%d", k), supply, nd, 0.05)
	}
	// Four switching blocks drawing pulsed current near the grid centre.
	for k, pos := range [][2]int{{n / 3, n / 3}, {n / 3, 2 * n / 3}, {2 * n / 3, n / 3}, {2 * n / 3, 2 * n / 3}} {
		nd, _ := c.FindNode(name(pos[0], pos[1]))
		wavepipe.AddISource(c, fmt.Sprintf("Isw%d", k), nd, wavepipe.Ground, wavepipe.Pulse{
			V1: 0, V2: 10e-3, Delay: 1e-9, Rise: 0.5e-9, Fall: 0.5e-9, Width: 2e-9, Period: 8e-9,
		})
	}
	sys, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}
	return sys, name(n/2, n/2)
}

func main() {
	sys, probe := buildGrid(20, 1.8)
	fmt.Printf("power grid: %d unknowns, probing %s\n\n", sys.N, probe)

	base := wavepipe.TranOptions{TStop: 40e-9, Record: []string{probe}}
	serial, err := wavepipe.RunTransient(sys, base)
	if err != nil {
		log.Fatal(err)
	}
	serialCrit := serial.Stats.CriticalNanos

	// Worst-case droop at the grid centre.
	sig, _ := serial.W.Signal(probe)
	minV := math.Inf(1)
	for _, v := range sig {
		minV = math.Min(minV, v)
	}
	fmt.Printf("worst-case droop at %s: %.1f mV below nominal\n\n", probe, (1.8-minV)*1e3)

	fmt.Printf("%-12s %8s %8s %10s %12s\n", "engine", "points", "stages", "model(ms)", "speedup")
	fmt.Printf("%-12s %8d %8d %10.2f %12s\n", "serial",
		serial.Stats.Points, serial.Stats.Stages, float64(serialCrit)/1e6, "1.00")
	for _, cfg := range []struct {
		scheme  wavepipe.Scheme
		threads int
	}{
		{wavepipe.Backward, 2},
		{wavepipe.Forward, 2},
		{wavepipe.Combined, 4},
		{wavepipe.FineGrained, 4},
	} {
		opts := base
		opts.Scheme = cfg.scheme
		opts.Threads = cfg.threads
		res, err := wavepipe.RunTransient(sys, opts)
		if err != nil {
			log.Fatal(err)
		}
		dev, _ := wavepipe.Compare(res.W, serial.W, probe)
		fmt.Printf("%-12s %8d %8d %10.2f %12.2f   (dev %.2g V)\n",
			fmt.Sprintf("%v/%dT", cfg.scheme, cfg.threads),
			res.Stats.Points, res.Stats.Stages,
			float64(res.Stats.CriticalNanos)/1e6,
			float64(serialCrit)/float64(res.Stats.CriticalNanos), dev.Max)
	}
}
