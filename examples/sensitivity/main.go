// Worst-case analysis of a voltage reference: DC operating point, adjoint
// sensitivity analysis (.SENS) ranking which components matter, a
// worst-case corner estimate from the normalized sensitivities — and a
// batched corner verification: the tolerance corners run as lockstep
// ensemble lanes sharing one symbolic analysis, against which the
// first-order estimate is checked and the batch-vs-serial speedup measured.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"wavepipe"
)

func main() {
	// A diode-stabilized reference: divider feeding a diode clamp.
	c := wavepipe.NewCircuit("vref")
	in := c.Node("in")
	ref := c.Node("ref")
	wavepipe.AddVSource(c, "VSUP", in, wavepipe.Ground, wavepipe.DC(12))
	wavepipe.AddResistor(c, "R1", in, ref, 4.7e3)
	wavepipe.AddResistor(c, "R2", ref, wavepipe.Ground, 10e3)
	m := wavepipe.DefaultDiodeModel()
	m.IS = 1e-12
	wavepipe.AddDiode(c, "D1", ref, wavepipe.Ground, m, 1)
	sys, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}

	op, err := wavepipe.RunOP(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operating point: v(ref) = %.4f V\n\n", op["ref"])

	sens, err := wavepipe.RunSens(sys, "ref")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(sens, func(i, j int) bool {
		return math.Abs(sens[i].Normalized) > math.Abs(sens[j].Normalized)
	})
	fmt.Printf("%-8s %-6s %14s %18s\n", "device", "param", "dV/dp", "dV per +100% p")
	for _, s := range sens {
		fmt.Printf("%-8s %-6s %14.6g %18.6g\n", s.Device, s.Param, s.DVDp, s.Normalized)
	}

	// Worst-case estimate for ±5% resistors and ±2% supply, first order.
	worst := 0.0
	for _, s := range sens {
		tol := 0.05
		if s.Device == "VSUP" {
			tol = 0.02
		}
		worst += math.Abs(s.Normalized) * tol
	}
	fmt.Printf("\nfirst-order worst case (±5%% R, ±2%% supply): ±%.2f mV\n", worst*1e3)

	// Verify the estimate by brute force: run the extreme corners as one
	// batched ensemble. Every lane shares the nominal circuit's matrix
	// pattern, fill-in ordering and conflict coloring; only values differ.
	corner := func(name string, dr1, dr2, dv float64) *wavepipe.Circuit {
		c := wavepipe.NewCircuit(name)
		in := c.Node("in")
		ref := c.Node("ref")
		wavepipe.AddVSource(c, "VSUP", in, wavepipe.Ground, wavepipe.Pulse{
			V1: 0, V2: 12 * (1 + dv), Delay: 0, Rise: 10e-6, Width: 1, Period: 2,
		})
		wavepipe.AddResistor(c, "R1", in, ref, 4.7e3*(1+dr1))
		wavepipe.AddResistor(c, "R2", ref, wavepipe.Ground, 10e3*(1+dr2))
		wavepipe.AddCapacitor(c, "C1", ref, wavepipe.Ground, 100e-9)
		wavepipe.AddDiode(c, "D1", ref, wavepipe.Ground, m, 1)
		return c
	}
	const tolR, tolV = 0.05, 0.02
	specs := []struct {
		name         string
		dr1, dr2, dv float64
	}{
		{"nominal", 0, 0, 0},
		{"low", +tolR, -tolR, -tolV},  // drives v(ref) down
		{"high", -tolR, +tolR, +tolV}, // drives v(ref) up
		{"r-up", +tolR, +tolR, 0},
		{"r-down", -tolR, -tolR, 0},
	}
	lanes := make([]*wavepipe.Circuit, len(specs))
	for i, sp := range specs {
		lanes[i] = corner(sp.name, sp.dr1, sp.dr2, sp.dv)
	}
	const tstop = 200e-6
	opts := wavepipe.TranOptions{TStop: tstop, Record: []string{"ref"}}

	ensOpts := opts
	ensOpts.Threads = len(specs) // one gang worker per corner
	res, err := wavepipe.RunEnsembleCircuits(lanes, ensOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsettled v(ref) per corner (batched transient, %d lanes):\n", len(specs))
	vNom := 0.0
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, lr := range res.Lanes {
		if lr.Err != nil {
			log.Fatalf("corner %s: %v", lr.Name, lr.Err)
		}
		v, err := lr.Res.W.At("ref", tstop)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			vNom = v
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
		fmt.Printf("  %-8s %.4f V\n", lr.Name, v)
	}
	fmt.Printf("measured corner spread: %+.2f / %+.2f mV around nominal (estimate ±%.2f mV)\n",
		(lo-vNom)*1e3, (hi-vNom)*1e3, worst*1e3)

	// Speedup: the same corners as independent serial runs, compared on the
	// critical-path timing model every benchmark figure uses.
	var serialCrit int64
	for i, sp := range specs {
		sys, err := corner(sp.name, sp.dr1, sp.dr2, sp.dv).Build()
		if err != nil {
			log.Fatal(err)
		}
		r, err := wavepipe.RunTransient(sys, opts)
		if err != nil {
			log.Fatalf("serial corner %d: %v", i, err)
		}
		serialCrit += r.Stats.CriticalNanos
	}
	fmt.Printf("batch speedup: %d serial corners %.2f ms -> ensemble critical path %.2f ms (%.2fx, %d workers)\n",
		len(specs), float64(serialCrit)/1e6, float64(res.Stats.CriticalNanos)/1e6,
		float64(serialCrit)/float64(res.Stats.CriticalNanos), res.Stats.PipelineWorkers)
}
