// Worst-case analysis of a voltage reference: DC operating point, adjoint
// sensitivity analysis (.SENS) ranking which components matter, and a
// worst-case corner estimate from the normalized sensitivities.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"wavepipe"
)

func main() {
	// A diode-stabilized reference: divider feeding a diode clamp.
	c := wavepipe.NewCircuit("vref")
	in := c.Node("in")
	ref := c.Node("ref")
	wavepipe.AddVSource(c, "VSUP", in, wavepipe.Ground, wavepipe.DC(12))
	wavepipe.AddResistor(c, "R1", in, ref, 4.7e3)
	wavepipe.AddResistor(c, "R2", ref, wavepipe.Ground, 10e3)
	m := wavepipe.DefaultDiodeModel()
	m.IS = 1e-12
	wavepipe.AddDiode(c, "D1", ref, wavepipe.Ground, m, 1)
	sys, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}

	op, err := wavepipe.RunOP(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operating point: v(ref) = %.4f V\n\n", op["ref"])

	sens, err := wavepipe.RunSens(sys, "ref")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(sens, func(i, j int) bool {
		return math.Abs(sens[i].Normalized) > math.Abs(sens[j].Normalized)
	})
	fmt.Printf("%-8s %-6s %14s %18s\n", "device", "param", "dV/dp", "dV per +100% p")
	for _, s := range sens {
		fmt.Printf("%-8s %-6s %14.6g %18.6g\n", s.Device, s.Param, s.DVDp, s.Normalized)
	}

	// Worst-case estimate for ±5% resistors and ±2% supply, first order.
	worst := 0.0
	for _, s := range sens {
		tol := 0.05
		if s.Device == "VSUP" {
			tol = 0.02
		}
		worst += math.Abs(s.Normalized) * tol
	}
	fmt.Printf("\nfirst-order worst case (±5%% R, ±2%% supply): ±%.2f mV\n", worst*1e3)
}
