// Quickstart: parse a SPICE deck, simulate it with the combined WavePipe
// scheme, and print a few output samples plus the run statistics.
package main

import (
	"fmt"
	"log"

	"wavepipe"
)

const deck = `low-pass filter quickstart
V1 in 0 SIN(0 1 10k)
R1 in out 1k
C1 out 0 10n
.tran 1u 300u
.end
`

func main() {
	d, err := wavepipe.ParseDeck(deck)
	if err != nil {
		log.Fatal(err)
	}

	// Serial reference first, then WavePipe with 4 worker threads.
	serial, err := wavepipe.RunDeck(d, wavepipe.TranOptions{Scheme: wavepipe.Serial})
	if err != nil {
		log.Fatal(err)
	}
	pipelined, err := wavepipe.RunDeck(d, wavepipe.TranOptions{
		Scheme:  wavepipe.Combined,
		Threads: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t (µs)    v(out) serial   v(out) wavepipe")
	for _, us := range []float64{50, 100, 150, 200, 250} {
		vs, _ := serial.W.At("out", us*1e-6)
		vp, _ := pipelined.W.At("out", us*1e-6)
		fmt.Printf("%6.0f    %13.6f   %15.6f\n", us, vs, vp)
	}

	dev, err := wavepipe.Compare(pipelined.W, serial.W, "out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax deviation from serial: %.3g V (%.4f%% of range)\n",
		dev.Max, 100*dev.RelMax())
	fmt.Printf("serial:   %d points in %d sequential solves\n",
		serial.Stats.Points, serial.Stats.Stages)
	fmt.Printf("wavepipe: %d points in %d pipeline stages (%d speculative points discarded)\n",
		pipelined.Stats.Points, pipelined.Stats.Stages, pipelined.Stats.Discarded)
}
