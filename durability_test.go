package wavepipe

// Durability suite: kill-and-resume bit-identity through the public facade,
// deadline and stall-watchdog aborts with typed errors and salvaged partial
// results, and panic containment. These are the acceptance tests for the
// checkpoint/resume layer — run them with -race; the watchdog and the
// engines share only the controller's atomics and the abort flag.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wavepipe/internal/circuits"
)

// acceptHook is an Observer that calls fn(n) after the n-th accepted point.
type acceptHook struct {
	n  atomic.Int64
	fn func(n int64)
}

func (h *acceptHook) OnEvent(ev TraceEvent) {
	if ev.Kind == TraceKindAccept {
		h.fn(h.n.Add(1))
	}
}
func (h *acceptHook) OnSnapshot(TraceSnapshot) {}

// durabilityCircuits is the kill-and-resume subset of the evaluation suite:
// a stiff analog mesh, a long linear line, a rectifier with breakpoints and
// diodes, and a regenerative digital ring.
func durabilityCircuits() []circuits.Benchmark {
	want := map[string]bool{"grid16": true, "ladder400": true, "rect1k": true, "ring9": true}
	var out []circuits.Benchmark
	for _, b := range circuits.Suite() {
		if want[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

// TestKillAndResumeSerialBitIdentical is the tentpole acceptance test: a
// serial run killed mid-flight (context cancel at an accepted point) and
// resumed from its final checkpoint must reproduce the uninterrupted run's
// waveform bit for bit — times, samples and final solution all exact.
func TestKillAndResumeSerialBitIdentical(t *testing.T) {
	for _, b := range durabilityCircuits() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			base := TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}}
			sys, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := RunTransient(sys, base)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Stats.Points < 20 {
				t.Fatalf("reference too short to interrupt (%d points)", ref.Stats.Points)
			}

			// Kill: cancel the context at the midpoint accept. The final
			// checkpoint is flushed by the engine's deferred save.
			path := filepath.Join(t.TempDir(), "run.wpcp")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			half := int64(ref.Stats.Points / 2)
			hook := &acceptHook{fn: func(n int64) {
				if n == half {
					cancel()
				}
			}}
			killOpts := base
			killOpts.CheckpointPath = path
			killOpts.CheckpointEvery = 16
			killOpts.Observer = hook
			sysA, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			partial, err := RunTransientCtx(ctx, sysA, killOpts)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("killed run: %v, want ErrCanceled", err)
			}
			if partial == nil || partial.W.Len() == 0 {
				t.Fatal("killed run returned no partial result")
			}

			// Resume from the checkpoint and finish.
			sysB, err := b.Make().Build()
			if err != nil {
				t.Fatal(err)
			}
			resOpts := base
			resOpts.ResumeFrom = path
			res, err := RunTransient(sysB, resOpts)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			sameWaveform(t, "resumed vs uninterrupted", res, ref)
			for i := range ref.FinalX {
				if res.FinalX[i] != ref.FinalX[i] {
					t.Fatalf("FinalX[%d] = %g, want %g", i, res.FinalX[i], ref.FinalX[i])
				}
			}
			if res.Stats.Points != ref.Stats.Points {
				t.Fatalf("cumulative points %d, want %d", res.Stats.Points, ref.Stats.Points)
			}
		})
	}
}

// TestKillAndResumePipelined covers the pipelined engine: a Combined-scheme
// run killed and resumed must still track the serial reference within the
// equivalence tolerances (pipelining is tolerance-equivalent, not
// bit-identical, so that is the contract after resume too).
func TestKillAndResumePipelined(t *testing.T) {
	b := durabilityCircuits()[0] // grid16
	base := TranOptions{TStop: b.TStop / 5, Record: []string{b.Probe}}
	sys, err := b.Make().Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunTransient(sys, base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.wpcp")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := &acceptHook{fn: func(n int64) {
		if n == 40 {
			cancel()
		}
	}}
	killOpts := base
	killOpts.Scheme = Combined
	killOpts.Threads = 3
	killOpts.CheckpointPath = path
	killOpts.CheckpointEvery = 16
	killOpts.Observer = hook
	sysA, _ := b.Make().Build()
	if _, err := RunTransientCtx(ctx, sysA, killOpts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("killed pipelined run: %v, want ErrCanceled", err)
	}

	sysB, _ := b.Make().Build()
	resOpts := base
	resOpts.Scheme = Combined
	resOpts.Threads = 3
	resOpts.ResumeFrom = path
	res, err := RunTransient(sysB, resOpts)
	if err != nil {
		t.Fatalf("resumed pipelined run: %v", err)
	}
	end := res.W.Times[res.W.Len()-1]
	if end < base.TStop*(1-1e-9) {
		t.Fatalf("resumed run stopped at t=%g, want %g", end, base.TStop)
	}
	dev, err := Compare(res.W, ref.W, b.Probe)
	if err != nil {
		t.Fatal(err)
	}
	if dev.RelMax() > 0.05 {
		t.Fatalf("resumed pipelined deviation %g exceeds 5%% of signal range", dev.RelMax())
	}
}

// TestDeadlineAbort verifies the wall-clock contract: a run with a deadline
// far shorter than its runtime aborts with ErrDeadlineExceeded, returns the
// partial result, flushes a final checkpoint, and leaks no goroutines.
func TestDeadlineAbort(t *testing.T) {
	before := runtime.NumGoroutine()
	sys, err := circuits.PowerGridMesh(24, 1.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "deadline.wpcp")
	res, err := RunTransient(sys, TranOptions{
		TStop: 80e-9, Record: []string{"n12_12"},
		Deadline:       30 * time.Millisecond,
		CheckpointPath: path,
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err %v is not a SimError", err)
	}
	if res == nil || res.W.Len() == 0 {
		t.Fatal("no partial result")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	waitGoroutineBaseline(t, before)
}

// TestStallWatchdogAbort wedges the run by blocking inside a synchronous
// observer callback for longer than the stall floor; the watchdog must trip
// ErrStalled and the engine must surface it at the next boundary.
func TestStallWatchdogAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("blocks >1s to exceed the stall floor")
	}
	before := runtime.NumGoroutine()
	sys, err := circuits.PowerGridMesh(16, 1.8).Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stall.wpcp")
	hook := &acceptHook{fn: func(n int64) {
		if n == 10 {
			// Simulated hang: no accepted step while this callback blocks.
			time.Sleep(1500 * time.Millisecond)
		}
	}}
	res, err := RunTransient(sys, TranOptions{
		TStop: 80e-9, Record: []string{"n8_8"},
		StallFactor:    2,
		CheckpointPath: path,
		Observer:       hook,
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if res == nil || res.W.Len() == 0 {
		t.Fatal("no partial result")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	waitGoroutineBaseline(t, before)
}

// TestPanicContainmentSalvage crashes the engine mid-run (a panicking
// observer callback on the serial hot path) and requires the facade to
// contain it: a typed ErrWorkerPanic error, a Result salvaged from the last
// retained snapshot, and a checkpoint file on disk.
func TestPanicContainmentSalvage(t *testing.T) {
	sys, err := circuits.RCLadder(400).Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "panic.wpcp")
	hook := &acceptHook{fn: func(n int64) {
		if n == 40 {
			panic("injected observer panic")
		}
	}}
	res, err := RunTransient(sys, TranOptions{
		TStop: 100e-9, Record: []string{"out"},
		CheckpointPath:  path,
		CheckpointEvery: 8,
		Observer:        hook,
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	if res == nil || res.W.Len() == 0 {
		t.Fatal("panic containment salvaged no result")
	}
	if res.FinalX == nil {
		t.Fatal("salvaged result has no final solution")
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("no checkpoint after panic: %v", err)
	}
	// The salvaged waveform must be resumable: the crash lost at most the
	// work after the last flushed snapshot.
	sysB, _ := circuits.RCLadder(400).Build()
	if _, err := RunTransient(sysB, TranOptions{
		TStop: 100e-9, Record: []string{"out"}, ResumeFrom: path,
	}); err != nil {
		t.Fatalf("resume after panic: %v", err)
	}
}

// TestResumeFromGarbageFails covers the CLI-facing failure path: resuming
// from a corrupted file must fail with the typed checkpoint error, not
// panic or silently start over.
func TestResumeFromGarbageFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.wpcp")
	if err := os.WriteFile(path, []byte("WPCPnot really a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := circuits.RCLadder(400).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunTransient(sys, TranOptions{TStop: 100e-9, ResumeFrom: path})
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err = %v, want ErrBadCheckpoint", err)
	}
}

// TestDurabilityOptionValidation pins the API-boundary rules.
func TestDurabilityOptionValidation(t *testing.T) {
	sys, err := circuits.RCLadder(400).Build()
	if err != nil {
		t.Fatal(err)
	}
	bad := []TranOptions{
		{TStop: 1e-9, Deadline: -time.Second},
		{TStop: 1e-9, CheckpointEvery: -1},
		{TStop: 1e-9, CheckpointEvery: 10}, // cadence without a path
		{TStop: 1e-9, StallFactor: -1},
	}
	for i, opts := range bad {
		if _, err := RunTransient(sys, opts); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
}

// waitGoroutineBaseline polls until the goroutine count drops back to the
// pre-test baseline, failing after two seconds — the watchdog must not
// outlive its run.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkCheckpointOverheadGrid16 measures the acceptance bound for
// periodic checkpointing at default cadence on the grid16 serial benchmark:
// compare the guarded and unguarded sub-benchmarks — the delta is the
// checkpoint overhead and must stay under 2%.
func BenchmarkCheckpointOverheadGrid16(b *testing.B) {
	sys, err := circuits.PowerGridMesh(16, 1.8).Build()
	if err != nil {
		b.Fatal(err)
	}
	base := TranOptions{TStop: 80e-9, Record: []string{"n8_8"}}
	b.Run("unguarded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunTransient(sys, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("guarded", func(b *testing.B) {
		dir := b.TempDir()
		opts := base
		opts.CheckpointPath = filepath.Join(dir, "bench.wpcp")
		for i := 0; i < b.N; i++ {
			if _, err := RunTransient(sys, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
