package wavepipe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"wavepipe/internal/artifact"
	"wavepipe/internal/sched"
	"wavepipe/internal/trace"
	"wavepipe/internal/transient"
)

// ErrUnknownJob is returned by Status/Wait/Stream/Cancel for an ID the
// service never issued.
var ErrUnknownJob = errors.New("wavepipe: unknown job")

// ErrQueueFull is returned by Submit when the service's admission control
// rejects a job because the wait queue is at capacity. Retry later; the
// HTTP layer maps it to 429.
var ErrQueueFull = sched.ErrQueueFull

// ServiceConfig sizes an in-process simulation service.
type ServiceConfig struct {
	// Cores is the global core budget every concurrent job draws grants
	// from (default: GOMAXPROCS). The sum of all running jobs' core grants
	// never exceeds it.
	Cores int
	// MaxQueued bounds the admission queue (default 64); beyond it Submit
	// fails fast with ErrQueueFull.
	MaxQueued int
	// CacheSize bounds the compiled-artifact cache in decks (default 16).
	CacheSize int
	// Dir receives per-job state: preemption checkpoints and (with
	// TraceJobs) per-job JSONL traces. Empty means a temporary directory
	// removed on Close.
	Dir string
	// TraceJobs writes each job's structured telemetry to Dir/<id>.trace.jsonl
	// when the job ends.
	TraceJobs bool
}

// Service runs simulations as jobs inside this process: a global
// multi-tenant arbiter multiplexes every submission over one core budget
// (priorities, fair share, preemption at accepted-step boundaries via
// checkpoint/resume), and a compiled-artifact cache hands repeat decks
// their System build, fill ordering, coloring and stamp templates without
// re-running symbolic analysis. Service implements Client; cmd/wavesimd
// serves the same object over HTTP.
type Service struct {
	cfg     ServiceConfig
	arb     *sched.Arbiter
	cache   *artifact.Cache
	metrics *trace.Metrics
	dir     string
	ownDir  bool

	mu     sync.Mutex
	jobs   map[string]*job
	seq    int
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Int64
	finished  atomic.Int64
	rejected  atomic.Int64
}

// job is the service-side state of one submission.
type job struct {
	id     string
	spec   JobSpec
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    JobState
	cores    int
	resumes  int
	cacheHit bool
	signals  []string
	rows     []StreamPoint
	update   chan struct{} // closed and replaced on every state/row change
	res      *Result
	err      error
	canceled bool // user asked; distinguishes cancel from preemption
}

// NewService starts an in-process simulation service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	dir, ownDir := cfg.Dir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "wavesimd-*")
		if err != nil {
			return nil, fmt.Errorf("wavepipe: service dir: %w", err)
		}
		dir, ownDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wavepipe: service dir: %w", err)
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	return &Service{
		cfg: cfg,
		// Admission is enforced at Submit (below), where it can fail fast
		// and count only new jobs. The arbiter's own bound is left effectively
		// unbounded so a preempted job's re-acquire — already admitted work —
		// can never be bounced by admission control.
		arb:     sched.NewArbiter(cfg.Cores, 1<<30),
		cache:   artifact.New(cfg.CacheSize),
		metrics: trace.NewMetrics(),
		dir:     dir,
		ownDir:  ownDir,
		jobs:    make(map[string]*job),
	}, nil
}

// Metrics returns the service-wide engine telemetry aggregate (the same
// counters the /metrics endpoint exposes).
func (s *Service) Metrics() *TraceMetrics { return s.metrics }

// Submit compiles the deck (through the artifact cache), merges its cards
// into the options, and enqueues the job with the global arbiter. It
// returns as soon as the job is queued; the returned status carries the
// job ID and whether the compiled artifacts were reused.
func (s *Service) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	if spec.Deck == "" {
		return JobStatus{}, fmt.Errorf("wavepipe: Submit: empty deck")
	}
	if err := managedFieldsZero(spec.Options); err != nil {
		return JobStatus{}, err
	}
	// Reduction shapes the compiled System, so it is part of the artifact
	// identity: the keep list folds in every node the job can observe or
	// seed (the deck's own .PRINT/.IC/.NODESET references are added by the
	// cache itself).
	entry, hit, err := s.cache.Compile(spec.Deck, artifact.BuildOptions{
		Reduce:     spec.Options.Reduce,
		ReduceTol:  spec.Options.ReduceTol,
		ReduceKeep: reduceKeepList(spec.Options),
	})
	if err != nil {
		return JobStatus{}, err
	}
	merged, err := (*Deck)(entry.Deck).ApplyTo(spec.Options)
	if err != nil {
		return JobStatus{}, err
	}
	if err := merged.validate(); err != nil {
		return JobStatus{}, err
	}
	base, err := baseOptions(entry.Sys, merged)
	if err != nil {
		return JobStatus{}, err
	}
	signals := transient.RecordSet(entry.Sys, base).Names

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, errors.New("wavepipe: service closed")
	}
	queued := 0
	for _, q := range s.jobs {
		q.mu.Lock()
		if q.state == JobQueued {
			queued++
		}
		q.mu.Unlock()
	}
	if queued >= s.cfg.MaxQueued {
		s.mu.Unlock()
		s.rejected.Add(1)
		return JobStatus{}, fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, queued)
	}
	s.seq++
	jctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:       fmt.Sprintf("j%06d", s.seq),
		spec:     spec,
		ctx:      jctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    JobQueued,
		cacheHit: hit,
		signals:  signals,
		update:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.wg.Add(1)
	s.mu.Unlock()
	s.submitted.Add(1)

	go s.run(j, entry, merged)
	return s.status(j), nil
}

// managedFieldsZero rejects option fields the service owns.
func managedFieldsZero(o TranOptions) error {
	switch {
	case o.CheckpointPath != "" || o.CheckpointEvery != 0 || o.ResumeFrom != "":
		return errors.New("wavepipe: Submit: checkpointing is managed by the service")
	case o.OnAccept != nil:
		return errors.New("wavepipe: Submit: OnAccept is managed by the service (use Stream)")
	case o.Observer != nil:
		return errors.New("wavepipe: Submit: Observer is managed by the service")
	case o.Faults != nil:
		return errors.New("wavepipe: Submit: fault injection is not accepted over the job API")
	}
	return nil
}

// run drives one job through acquire → simulate → (preempt/resume)* → end.
func (s *Service) run(j *job, entry *artifact.Entry, opts TranOptions) {
	defer s.wg.Done()
	ckpt := filepath.Join(s.dir, j.id+".ckpt")
	opts.CheckpointPath = ckpt
	opts.OnAccept = func(t float64, row []float64) {
		p := StreamPoint{T: t, Values: append([]float64(nil), row...)}
		j.mu.Lock()
		j.rows = append(j.rows, p)
		j.broadcastLocked()
		j.mu.Unlock()
	}
	var rec *trace.Recorder
	observers := []trace.Observer{s.metrics}
	if s.cfg.TraceJobs {
		rec = trace.NewRecorder(0)
		observers = append(observers, rec)
	}
	opts.Observer = trace.Multi(observers...)

	// The core request: an explicit CoreBudget wins, else the requested
	// worker count, else one core. The grant (≤ the request) becomes the
	// run's CoreBudget, so the job's internal two-level scheduler subdivides
	// exactly what the arbiter allotted.
	want := opts.CoreBudget
	if want <= 0 {
		want = opts.Threads
	}
	if want <= 0 {
		want = 1
	}

	for {
		grant, err := s.arb.Acquire(j.ctx, j.spec.Priority, want)
		if err != nil {
			s.finish(j, nil, err)
			return
		}
		j.mu.Lock()
		j.state = JobRunning
		j.cores = grant.Cores
		j.broadcastLocked()
		j.mu.Unlock()

		runCtx, stopRun := context.WithCancel(j.ctx)
		var preempted atomic.Bool
		watchDone := make(chan struct{})
		go func() {
			defer close(watchDone)
			select {
			case <-grant.Preempted():
				preempted.Store(true)
				stopRun()
			case <-runCtx.Done():
			}
		}()

		o := opts
		o.CoreBudget = grant.Cores
		if _, statErr := os.Stat(ckpt); statErr == nil {
			o.ResumeFrom = ckpt
		}
		res, err := RunTransientCtx(runCtx, entry.Sys, o)
		stopRun()
		<-watchDone
		grant.Release()

		if err != nil && errors.Is(err, ErrCanceled) && preempted.Load() && j.ctx.Err() == nil {
			// Preempted, not canceled: the final checkpoint the guard
			// flushed at the last accepted step is the resume point. Back to
			// the queue; the stream keeps its rows (a resumed run does not
			// re-emit restored points).
			j.mu.Lock()
			j.state = JobPreempted
			j.cores = 0
			j.resumes++
			j.broadcastLocked()
			j.mu.Unlock()
			continue
		}
		s.finish(j, res, err)
		if rec != nil {
			s.writeTrace(j.id, rec)
		}
		return
	}
}

// finish moves a job to its terminal state and wakes waiters and streams.
func (s *Service) finish(j *job, res *Result, err error) {
	j.mu.Lock()
	j.res, j.err = res, err
	j.cores = 0
	switch {
	case err == nil:
		j.state = JobDone
	case j.canceled && errors.Is(err, ErrCanceled):
		j.state = JobCanceled
	default:
		j.state = JobFailed
	}
	j.broadcastLocked()
	j.mu.Unlock()
	close(j.done)
	s.finished.Add(1)
	os.Remove(filepath.Join(s.dir, j.id+".ckpt"))
}

// writeTrace flushes a finished job's telemetry to <dir>/<id>.trace.jsonl.
func (s *Service) writeTrace(id string, rec *trace.Recorder) {
	f, err := os.Create(filepath.Join(s.dir, id+".trace.jsonl"))
	if err != nil {
		return
	}
	defer f.Close()
	_ = trace.WriteJSONL(f, rec.Events(), rec.Snapshots())
}

// broadcastLocked wakes everything blocked on the job's next change.
// Callers hold j.mu.
func (j *job) broadcastLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

func (s *Service) lookup(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

func (s *Service) status(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Label:    j.spec.Label,
		State:    j.state,
		Priority: j.spec.Priority,
		Cores:    j.cores,
		Resumes:  j.resumes,
		CacheHit: j.cacheHit,
		Signals:  j.signals,
		Points:   len(j.rows),
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Status snapshots a job.
func (s *Service) Status(_ context.Context, id string) (JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	return s.status(j), nil
}

// Wait blocks until the job is terminal and returns its Result. Failed and
// canceled jobs return the partial Result (when the engine salvaged one)
// alongside the typed error.
func (s *Service) Wait(ctx context.Context, id string) (*Result, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Stream replays the job's accepted points from t=0 and then follows the
// live run. The channel is closed when the job reaches a terminal state or
// ctx is done; per-job errors are reported by Wait/Status, not the stream.
func (s *Service) Stream(ctx context.Context, id string) (<-chan StreamPoint, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	out := make(chan StreamPoint, 64)
	go func() {
		defer close(out)
		next := 0
		for {
			j.mu.Lock()
			rows := j.rows
			update := j.update
			terminal := j.state.Terminal()
			j.mu.Unlock()
			for ; next < len(rows); next++ {
				select {
				case out <- rows[next]:
				case <-ctx.Done():
					return
				}
			}
			if terminal {
				return
			}
			select {
			case <-update:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// Cancel stops a job. Terminal jobs are unaffected; unknown IDs error.
func (s *Service) Cancel(_ context.Context, id string) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.canceled = true
	j.mu.Unlock()
	j.cancel()
	return nil
}

// Jobs lists the IDs the service has issued, oldest first.
func (s *Service) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	return ids
}

// sortStrings is a tiny insertion sort; job lists are small and this keeps
// the facade free of a sort import for one call site.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k] < a[k-1]; k-- {
			a[k], a[k-1] = a[k-1], a[k]
		}
	}
}

// CacheCounters reports the artifact cache's cumulative hits, misses and
// System builds (builds == misses unless a build failed).
func (s *Service) CacheCounters() (hits, misses, builds int64) {
	return s.cache.Counters()
}

// SchedSnapshot reports the arbiter's live and cumulative scheduling state.
// Rejections are counted at Submit, where the service enforces admission.
func (s *Service) SchedSnapshot() (coresTotal, coresInUse, running, queued int, admitted, rejected, preemptions int64) {
	return s.arb.Total(), s.arb.InUse(), s.arb.Running(), s.arb.Queued(),
		s.arb.Admitted(), s.rejected.Load(), s.arb.Preemptions()
}

// WritePrometheus writes the service metrics in Prometheus text format: the
// engine-level wavepipe_* rows plus the service-level wavesimd_* rows
// (artifact cache, scheduler, job lifecycle).
func (s *Service) WritePrometheus(w io.Writer) error {
	if err := s.metrics.WritePrometheus(w); err != nil {
		return err
	}
	hits, misses, builds := s.cache.Counters()
	total, inUse, running, queued, admitted, rejected, preempts := s.SchedSnapshot()
	rows := []struct {
		name string
		kind string
		v    int64
	}{
		{"wavesimd_artifact_cache_hits_total", "counter", hits},
		{"wavesimd_artifact_cache_misses_total", "counter", misses},
		{"wavesimd_artifact_cache_builds_total", "counter", builds},
		{"wavesimd_sched_admitted_total", "counter", admitted},
		{"wavesimd_sched_rejected_total", "counter", rejected},
		{"wavesimd_sched_preemptions_total", "counter", preempts},
		{"wavesimd_jobs_submitted_total", "counter", s.submitted.Load()},
		{"wavesimd_jobs_finished_total", "counter", s.finished.Load()},
		{"wavesimd_cores_total", "gauge", int64(total)},
		{"wavesimd_cores_in_use", "gauge", int64(inUse)},
		{"wavesimd_jobs_running", "gauge", int64(running)},
		{"wavesimd_jobs_queued", "gauge", int64(queued)},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", r.name, r.kind, r.name, r.v); err != nil {
			return err
		}
	}
	return nil
}

// Close cancels every live job, waits for them to unwind, and releases the
// service. Jobs canceled this way end in JobCanceled.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		j.canceled = true
		j.mu.Unlock()
		j.cancel()
	}
	s.wg.Wait()
	s.arb.Close()
	if s.ownDir {
		os.RemoveAll(s.dir)
	}
	return nil
}

// compile-time check: the in-process service is a Client.
var _ Client = (*Service)(nil)
