package wavepipe_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wavepipe"
	"wavepipe/internal/circuits"
)

func buildBench(t *testing.T, name string) (*wavepipe.System, wavepipe.TranOptions) {
	t.Helper()
	for _, b := range circuits.Suite() {
		if b.Name != name {
			continue
		}
		sys, err := b.Make().Build()
		if err != nil {
			t.Fatal(err)
		}
		return sys, wavepipe.TranOptions{TStop: b.TStop, Record: []string{b.Probe}}
	}
	t.Fatalf("no benchmark circuit %q", name)
	return nil, wavepipe.TranOptions{}
}

// TestTracedRunReconcilesWithStats is the acceptance test for the trace
// layer: a combined-scheme run with an observer attached produces an event
// stream whose replayed counters agree exactly with the engine's own Stats,
// and whose Chrome export is loadable JSON.
func TestTracedRunReconcilesWithStats(t *testing.T) {
	sys, opts := buildBench(t, "grid16")
	opts.Scheme = wavepipe.Combined
	opts.Threads = 4
	rec := wavepipe.NewTraceRecorder(0) // unbounded: reconciliation needs every event
	opts.Observer = rec

	res, err := wavepipe.RunTransient(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("unbounded recorder dropped %d events", rec.Dropped())
	}

	rc := wavepipe.ReplayTrace(rec.Events())
	check := func(name string, got, want int) {
		if got != want {
			t.Errorf("%s: replayed %d, Stats say %d", name, got, want)
		}
	}
	check("Points", rc.Points, res.Stats.Points)
	check("Solves", rc.Solves, res.Stats.Solves)
	check("NRIters", rc.NRIters, res.Stats.NRIters)
	check("LTERejects", rc.LTERejects, res.Stats.LTERejects)
	check("Discarded", rc.Discarded, res.Stats.Discarded)
	check("Recoveries", rc.Recoveries, res.Stats.Recoveries)
	if res.Stats.Points == 0 || res.Stats.Solves == 0 {
		t.Fatalf("degenerate run: %+v", res.Stats)
	}

	// The same stream must survive a JSONL round trip bit-exactly.
	var buf bytes.Buffer
	if err := wavepipe.WriteTraceJSONL(&buf, rec.Events(), rec.Snapshots()); err != nil {
		t.Fatal(err)
	}
	events, snaps, err := wavepipe.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(rec.Events()) || len(snaps) != len(rec.Snapshots()) {
		t.Fatalf("roundtrip lost records: %d/%d events, %d/%d snapshots",
			len(events), len(rec.Events()), len(snaps), len(rec.Snapshots()))
	}
	if rc2 := wavepipe.ReplayTrace(events); rc2 != rc {
		t.Fatalf("roundtrip replay mismatch:\n got %+v\nwant %+v", rc2, rc)
	}

	// And the Chrome export must be a well-formed trace_event array.
	buf.Reset()
	if err := wavepipe.WriteChromeTrace(&buf, rec.Events(), rec.Snapshots()); err != nil {
		t.Fatal(err)
	}
	var doc []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc) < len(rec.Events()) {
		t.Fatalf("chrome trace has %d records for %d events", len(doc), len(rec.Events()))
	}
}

// TestSerialTraceReconciles covers the serial engine's emission sites (the
// combined engine routes through different code paths).
func TestSerialTraceReconciles(t *testing.T) {
	sys, opts := buildBench(t, "ladder400")
	rec := wavepipe.NewTraceRecorder(0)
	opts.Observer = rec
	res, err := wavepipe.RunTransient(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc := wavepipe.ReplayTrace(rec.Events())
	if rc.Points != res.Stats.Points || rc.Solves != res.Stats.Solves ||
		rc.NRIters != res.Stats.NRIters || rc.LTERejects != res.Stats.LTERejects {
		t.Fatalf("serial replay mismatch: %+v vs %+v", rc, res.Stats)
	}
}

// cancelAfter is an Observer that cancels a context after n accepted points.
type cancelAfter struct {
	n       int64
	accepts atomic.Int64
	cancel  context.CancelFunc
}

func (c *cancelAfter) OnEvent(ev wavepipe.TraceEvent) {
	if ev.Kind == wavepipe.TraceKindAccept && c.accepts.Add(1) == c.n {
		c.cancel()
	}
}

func (c *cancelAfter) OnSnapshot(wavepipe.TraceSnapshot) {}

// TestCancellationMidRun cancels a combined-scheme grid run from inside the
// event stream after ~10 accepted points and checks the contract: a partial
// waveform, a typed ErrCanceled, and no leaked worker goroutines.
func TestCancellationMidRun(t *testing.T) {
	before := runtime.NumGoroutine()

	sys, opts := buildBench(t, "grid16")
	opts.Scheme = wavepipe.Combined
	opts.Threads = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelAfter{n: 10, cancel: cancel}
	opts.Observer = obs

	res, err := wavepipe.RunTransientCtx(ctx, sys, opts)
	if !errors.Is(err, wavepipe.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	var se *wavepipe.SimError
	if !errors.As(err, &se) {
		t.Fatalf("cancellation should carry phase/time context, got %T", err)
	}
	if res == nil {
		t.Fatal("canceled run must return the partial result")
	}
	if res.Stats.Points < 10 {
		t.Fatalf("partial result has %d points, expected at least the 10 that triggered the cancel", res.Stats.Points)
	}
	if got := len(res.W.Times); got < 2 {
		t.Fatalf("partial waveform has %d samples", got)
	}
	if last := res.W.Times[len(res.W.Times)-1]; last >= opts.TStop {
		t.Fatalf("run claims to have finished (t=%g of %g) despite cancellation", last, opts.TStop)
	}

	// Engine workers are joined per stage, so none may outlive the run.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak after cancellation: %d before, %d after", before, now)
	}
}

// TestCancellationSerial covers the serial engine's per-point poll.
func TestCancellationSerial(t *testing.T) {
	sys, opts := buildBench(t, "ladder400")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelAfter{n: 5, cancel: cancel}
	opts.Observer = obs
	res, err := wavepipe.RunTransientCtx(ctx, sys, opts)
	if !errors.Is(err, wavepipe.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil || res.Stats.Points < 5 {
		t.Fatalf("partial result missing or too short: %+v", res)
	}
}

// TestTranOptionsValidation checks that nonsense option values fail loudly
// at the facade instead of flowing into the engines.
func TestTranOptionsValidation(t *testing.T) {
	sys, base := buildBench(t, "ladder400")
	cases := []struct {
		name string
		mut  func(*wavepipe.TranOptions)
		want string
	}{
		{"negative threads", func(o *wavepipe.TranOptions) { o.Threads = -1 }, "Threads"},
		{"absurd threads", func(o *wavepipe.TranOptions) { o.Threads = 4096 }, "Threads"},
		{"NaN delta", func(o *wavepipe.TranOptions) { o.DeltaRatio = math.NaN() }, "DeltaRatio"},
		{"negative delta", func(o *wavepipe.TranOptions) { o.DeltaRatio = -0.2 }, "DeltaRatio"},
		{"delta >= 1", func(o *wavepipe.TranOptions) { o.DeltaRatio = 1.0 }, "DeltaRatio"},
	}
	for _, tc := range cases {
		opts := base
		tc.mut(&opts)
		_, err := wavepipe.RunTransient(sys, opts)
		if err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
	}
	// The boundary values are legal.
	opts := base
	opts.Scheme = wavepipe.Backward
	opts.Threads = 2
	opts.DeltaRatio = 0.5
	if _, err := wavepipe.RunTransient(sys, opts); err != nil {
		t.Fatalf("legal options rejected: %v", err)
	}
}

// TestMetricsObserverEndToEnd drives the live-metrics observer from a real
// run and spot-checks both exposition formats.
func TestMetricsObserverEndToEnd(t *testing.T) {
	sys, opts := buildBench(t, "ladder400")
	m := wavepipe.NewTraceMetrics()
	opts.Observer = m
	res, err := wavepipe.RunTransient(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Points(); got != int64(res.Stats.Points) {
		t.Fatalf("metrics points = %d, Stats = %d", got, res.Stats.Points)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wavepipe_points_total") {
		t.Fatalf("prometheus exposition missing counters:\n%s", buf.String())
	}
	buf.Reset()
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var flat map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if flat["wavepipe_points_total"] != float64(res.Stats.Points) {
		t.Fatalf("JSON points = %v, Stats = %d", flat["wavepipe_points_total"], res.Stats.Points)
	}
}
